package transport

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestMain is the package's goroutine-leak barrier: every test must leave
// the process with (about) as many goroutines as it started with —
// listeners, readers, writers and reconnect loops all have to terminate
// when a transport is Closed.
func TestMain(m *testing.M) {
	// +1: running under `go test -fuzz`, the fuzzing engine installs an
	// os/signal handler goroutine that lives until process exit.
	before := runtime.NumGoroutine() + 1
	code := m.Run()
	if code == 0 && !settleGoroutines(before, 5*time.Second) {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "goroutine leak: started with %d, still %d after settle\n%s\n",
			before, runtime.NumGoroutine(), buf[:n])
		code = 1
	}
	os.Exit(code)
}

func settleGoroutines(target int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= target {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine() <= target
}

type sink struct {
	mu   sync.Mutex
	got  []*Msg
	from []NodeID
	cond *sync.Cond
}

func newSink() *sink {
	s := &sink{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sink) handler(from NodeID, m *Msg) {
	s.mu.Lock()
	s.got = append(s.got, m)
	s.from = append(s.from, from)
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *sink) waitFor(t *testing.T, n int) []*Msg {
	t.Helper()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for len(s.got) < n {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %d messages", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Msg(nil), s.got...)
}

func TestTCPHelloAssignAndRoundTrip(t *testing.T) {
	headSink, dSink := newSink(), newSink()
	head, err := Listen(Config{Self: 1, Handler: headSink.handler, Assign: func() NodeID { return 2 }})
	if err != nil {
		t.Fatal(err)
	}
	defer head.Close()
	d, err := Listen(Config{Self: 0, Handler: dSink.handler})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	peer, err := d.Dial(head.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if peer != 1 {
		t.Fatalf("dialed peer = %d, want 1", peer)
	}
	if d.Self() != 2 {
		t.Fatalf("assigned self = %d, want 2", d.Self())
	}

	if !d.Send(1, &Msg{To: 77, Corr: 5, Origin: 2, Kind: 1, Payload: []byte("ping")}) {
		t.Fatal("send daemon→head failed")
	}
	got := headSink.waitFor(t, 1)
	if got[0].To != 77 || got[0].Corr != 5 || got[0].Origin != 2 || string(got[0].Payload) != "ping" {
		t.Fatalf("head got %+v", got[0])
	}
	// Head replies over the same connection without ever dialing.
	if !head.Send(2, &Msg{Corr: 5, Origin: 1, Kind: 2, Payload: []byte("pong")}) {
		t.Fatal("send head→daemon failed")
	}
	if back := dSink.waitFor(t, 1); string(back[0].Payload) != "pong" {
		t.Fatalf("daemon got %+v", back[0])
	}
}

func TestTCPSendToUnknownNode(t *testing.T) {
	s := newSink()
	tr, err := Listen(Config{Self: 1, Handler: s.handler})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Send(99, &Msg{Kind: 1}) {
		t.Fatal("send to unknown node reported success")
	}
}

func TestTCPLazyDialViaSetAddr(t *testing.T) {
	aSink, bSink := newSink(), newSink()
	a, err := Listen(Config{Self: 1, Handler: aSink.handler})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(Config{Self: 2, Handler: bSink.handler})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.SetAddr(2, b.Addr())
	if !a.Send(2, &Msg{Kind: 3, Payload: []byte("lazy")}) {
		t.Fatal("lazy-dial send failed")
	}
	if got := bSink.waitFor(t, 1); string(got[0].Payload) != "lazy" {
		t.Fatalf("b got %+v", got[0])
	}
}

func TestTCPReconnectAfterDrop(t *testing.T) {
	headSink := newSink()
	var downs sync.Map
	head, err := Listen(Config{Self: 1, Handler: headSink.handler, Assign: func() NodeID { return 2 }})
	if err != nil {
		t.Fatal(err)
	}
	defer head.Close()
	d, err := Listen(Config{Self: 0, Handler: func(NodeID, *Msg) {},
		OnPeerDown: func(id NodeID) { downs.Store(id, true) }})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Dial(head.Addr()); err != nil {
		t.Fatal(err)
	}
	if !d.Send(1, &Msg{Kind: 1, Payload: []byte("one")}) {
		t.Fatal("first send failed")
	}
	headSink.waitFor(t, 1)

	// Sever the connection from the head's side; the daemon's reconnect
	// loop must re-establish it and traffic must flow again.
	head.mu.Lock()
	c := head.conns[2]
	head.mu.Unlock()
	c.shutdown()
	c.drop()

	// Delivery is at-most-once: a send accepted onto the dying connection
	// may be lost, so retry until one actually lands.
	deadline := time.Now().Add(5 * time.Second)
	arrived := false
	for time.Now().Before(deadline) {
		d.Send(1, &Msg{Kind: 1, Payload: []byte("two")})
		headSink.mu.Lock()
		arrived = len(headSink.got) >= 2
		headSink.mu.Unlock()
		if arrived {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !arrived {
		t.Fatal("no message arrived after reconnect")
	}
	msgs := headSink.waitFor(t, 2)
	if string(msgs[1].Payload) != "two" {
		t.Fatalf("post-reconnect message: %+v", msgs[1])
	}
	if _, ok := downs.Load(NodeID(1)); !ok {
		t.Fatal("daemon never observed the head connection drop")
	}
}

func TestTCPCloseStopsReconnect(t *testing.T) {
	head, err := Listen(Config{Self: 1, Handler: func(NodeID, *Msg) {}, Assign: func() NodeID { return 2 }})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Listen(Config{Self: 0, Handler: func(NodeID, *Msg) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dial(head.Addr()); err != nil {
		t.Fatal(err)
	}
	// Kill the head entirely: the daemon's reconnect loop starts spinning
	// against a dead address. Close must terminate it (the package leak
	// barrier verifies no goroutine survives).
	head.Close()
	time.Sleep(50 * time.Millisecond)
	d.Close()
	if d.Send(1, &Msg{Kind: 1}) {
		t.Fatal("send succeeded after Close")
	}
}

func TestLocalHub(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(1), hub.Endpoint(2)
	s := newSink()
	b.OnMessage(s.handler)
	if !a.Send(2, &Msg{To: 5, Kind: 7, Payload: []byte("x")}) {
		t.Fatal("local send failed")
	}
	got := s.waitFor(t, 1)
	if got[0].To != 5 || got[0].Kind != 7 {
		t.Fatalf("got %+v", got[0])
	}
	if a.Send(3, &Msg{}) {
		t.Fatal("send to unregistered endpoint succeeded")
	}
	b.Close()
	if a.Send(2, &Msg{}) {
		t.Fatal("send to closed endpoint succeeded")
	}
}
