// Package transport is the message medium under the p2p cluster: it moves
// opaque, correlation-tagged frames between *nodes* (OS processes hosting one
// or more peers) and knows nothing about what the frames mean.
//
// # The seam
//
// The p2p layer historically delivered requests by writing a `request` struct
// — reply channel and all — straight into the destination peer's inbox. That
// fast path survives unchanged for peers hosted by the same process: hop
// counts, the 0-alloc direct-get path and the goroutine-leak barrier are
// untouched, because no Msg is ever built for an in-process delivery. Only
// when the destination peer lives on another node does the cluster fall
// through to a Transport, and at that point the reply channel is replaced by
// a correlation ID.
//
// # The correlation contract
//
// A channel cannot cross a process boundary, so a request that expects an
// answer carries Msg.Corr, a nonzero 64-bit ID minted by the *origin* node.
// The contract is:
//
//   - Corr == 0 means fire-and-forget: no response frame may be sent for it.
//   - Corr != 0 obliges whichever node finally serves the request to send
//     exactly one response frame addressed to Msg.Origin carrying the same
//     Corr. Intermediate nodes that forward the request forward Origin and
//     Corr verbatim — the response does not retrace the request's route.
//   - The origin keeps a table mapping Corr to a completion (a channel send,
//     a range-collector contribution, ...). The table entry is released when
//     the response arrives, when the connection that the request left on
//     drops (completed with the owner-down error so retry layers see the
//     exact failure they already handle), or when the node stops.
//   - A response for a released Corr is dropped silently; late duplicates
//     are harmless.
//
// Transports deliver frames at most once, in order per connection, and never
// block the sender: Send either enqueues and returns true or returns false
// immediately (unknown node, connection down, transport stopped), which the
// p2p layer maps onto its existing refused-delivery semantics.
package transport

// NodeID names a process in the cluster. ID 0 is reserved: a dialer that
// does not yet have an identity claims 0 and is assigned one by the
// listener's Assign hook during the hello handshake.
type NodeID uint32

// Msg is one frame on the wire. To/Kind/Flags/Payload are opaque to the
// transport; Corr and Origin implement the correlation contract above.
type Msg struct {
	To      uint64 // destination peer (p2p-level address inside the node)
	Corr    uint64 // correlation ID, 0 = fire-and-forget
	Origin  NodeID // node the response (if any) must be sent to
	Kind    uint8  // p2p-level message kind; values >= 250 are reserved
	Flags   uint8
	Payload []byte
}

// Handler receives every inbound frame. It runs on the connection's reader
// goroutine and must not block: hand long work to another goroutine.
type Handler func(from NodeID, m *Msg)

// Transport moves frames between nodes.
type Transport interface {
	// Self is this node's ID (assigned during the hello handshake when the
	// node dialed in with ID 0).
	Self() NodeID
	// Send enqueues m for node `to`. It never blocks; false means the frame
	// was not and will not be sent (no connection, transport stopped).
	Send(to NodeID, m *Msg) bool
	// Close tears the transport down: listeners and connections close,
	// reconnect loops terminate, reader/writer goroutines exit.
	Close()
}

// Reserved frame kinds used by the hello handshake. P2P-level kinds must
// stay below these.
const (
	kindHello    = 255
	kindHelloAck = 254
)
