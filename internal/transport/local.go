package transport

import "sync"

// Hub connects Local endpoints inside one process. It exists so the
// Transport seam can be exercised — and multi-node clusters assembled —
// without sockets: frames are handed to the destination's handler
// synchronously in the sender's goroutine, preserving the at-most-once,
// in-order, never-blocking contract with zero copies.
type Hub struct {
	mu  sync.Mutex
	eps map[NodeID]*Local
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{eps: make(map[NodeID]*Local)} }

// Endpoint registers (or returns) the endpoint for node id.
func (h *Hub) Endpoint(id NodeID) *Local {
	h.mu.Lock()
	defer h.mu.Unlock()
	ep := h.eps[id]
	if ep == nil {
		ep = &Local{hub: h, id: id}
		h.eps[id] = ep
	}
	return ep
}

// Local is the in-process Transport: Send looks the destination up in the
// hub and invokes its handler directly. The p2p cluster only consults a
// transport for peers hosted by *another* node, so a single-process cluster
// on Local endpoints pays exactly one nil-check over the historical
// channel/spill fast path — which is the fast path, unchanged.
type Local struct {
	hub     *Hub
	id      NodeID
	mu      sync.Mutex
	handler Handler
	closed  bool
}

// OnMessage installs the inbound dispatch callback.
func (l *Local) OnMessage(h Handler) {
	l.mu.Lock()
	l.handler = h
	l.mu.Unlock()
}

// Self implements Transport.
func (l *Local) Self() NodeID { return l.id }

// Send implements Transport: synchronous dispatch to the destination's
// handler, false if the destination is absent or either side is closed.
func (l *Local) Send(to NodeID, m *Msg) bool {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return false
	}
	l.hub.mu.Lock()
	dst := l.hub.eps[to]
	l.hub.mu.Unlock()
	if dst == nil {
		return false
	}
	dst.mu.Lock()
	h := dst.handler
	if dst.closed {
		h = nil
	}
	dst.mu.Unlock()
	if h == nil {
		return false
	}
	h(l.id, m)
	return true
}

// Close implements Transport. The endpoint stays registered (so late Sends
// to it return false rather than panicking) but delivers nothing more.
func (l *Local) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}
