package keyspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewRange(10, 5) did not panic")
		}
	}()
	NewRange(10, 5)
}

func TestRangeContains(t *testing.T) {
	r := NewRange(10, 20)
	cases := []struct {
		k    Key
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {25, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.k); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestRangeSizeAndEmpty(t *testing.T) {
	if got := NewRange(5, 5).Size(); got != 0 {
		t.Errorf("empty range size = %d, want 0", got)
	}
	if !NewRange(5, 5).IsEmpty() {
		t.Errorf("range [5,5) should be empty")
	}
	if got := NewRange(3, 10).Size(); got != 7 {
		t.Errorf("size = %d, want 7", got)
	}
	if NewRange(3, 10).IsEmpty() {
		t.Errorf("range [3,10) should not be empty")
	}
}

func TestIntersects(t *testing.T) {
	a := NewRange(0, 10)
	cases := []struct {
		b    Range
		want bool
	}{
		{NewRange(10, 20), false},
		{NewRange(9, 20), true},
		{NewRange(-5, 0), false},
		{NewRange(-5, 1), true},
		{NewRange(3, 4), true},
		{NewRange(0, 10), true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestIntersection(t *testing.T) {
	a := NewRange(0, 10)
	b := NewRange(5, 15)
	got := a.Intersection(b)
	if got.Lower != 5 || got.Upper != 10 {
		t.Errorf("Intersection = %v, want [5,10)", got)
	}
	if !a.Intersection(NewRange(20, 30)).IsEmpty() {
		t.Errorf("Intersection of disjoint ranges should be empty")
	}
}

func TestSplitAt(t *testing.T) {
	r := NewRange(0, 100)
	l, rt, err := r.SplitAt(40)
	if err != nil {
		t.Fatalf("SplitAt: %v", err)
	}
	if l != NewRange(0, 40) || rt != NewRange(40, 100) {
		t.Errorf("SplitAt(40) = %v, %v", l, rt)
	}
	if _, _, err := r.SplitAt(101); err == nil {
		t.Errorf("SplitAt outside range should fail")
	}
	if _, _, err := r.SplitAt(-1); err == nil {
		t.Errorf("SplitAt outside range should fail")
	}
	// Splitting at the boundaries yields one empty side.
	l, rt, err = r.SplitAt(0)
	if err != nil || !l.IsEmpty() || rt != r {
		t.Errorf("SplitAt(0) = %v, %v, %v", l, rt, err)
	}
}

func TestSplitHalf(t *testing.T) {
	r := NewRange(0, 10)
	lo, hi, err := r.SplitHalf()
	if err != nil {
		t.Fatalf("SplitHalf: %v", err)
	}
	if lo != NewRange(0, 5) || hi != NewRange(5, 10) {
		t.Errorf("SplitHalf = %v, %v", lo, hi)
	}
	// Odd-sized range: lower half gets the extra key.
	lo, hi, _ = NewRange(0, 11).SplitHalf()
	if lo.Size() != 6 || hi.Size() != 5 {
		t.Errorf("odd SplitHalf sizes = %d, %d, want 6, 5", lo.Size(), hi.Size())
	}
	if _, _, err := NewRange(7, 7).SplitHalf(); err == nil {
		t.Errorf("SplitHalf of empty range should fail")
	}
}

func TestUnion(t *testing.T) {
	a := NewRange(0, 10)
	b := NewRange(10, 20)
	u, err := a.Union(b)
	if err != nil || u != NewRange(0, 20) {
		t.Errorf("Union adjacent = %v, %v", u, err)
	}
	u, err = b.Union(a)
	if err != nil || u != NewRange(0, 20) {
		t.Errorf("Union adjacent reversed = %v, %v", u, err)
	}
	if _, err := a.Union(NewRange(15, 20)); err == nil {
		t.Errorf("Union of disjoint ranges should fail")
	}
	u, err = a.Union(NewRange(5, 20))
	if err != nil || u != NewRange(0, 20) {
		t.Errorf("Union overlapping = %v, %v", u, err)
	}
	u, err = a.Union(NewRange(4, 4))
	if err != nil || u != a {
		t.Errorf("Union with empty = %v, %v", u, err)
	}
}

func TestClamp(t *testing.T) {
	r := NewRange(10, 20)
	if r.Clamp(5) != 10 {
		t.Errorf("Clamp below")
	}
	if r.Clamp(25) != 19 {
		t.Errorf("Clamp above")
	}
	if r.Clamp(15) != 15 {
		t.Errorf("Clamp inside")
	}
}

func TestCovers(t *testing.T) {
	r := NewRange(0, 100)
	ok := Covers(r, []Range{NewRange(0, 30), NewRange(30, 60), NewRange(60, 100)})
	if !ok {
		t.Errorf("contiguous tiling should cover")
	}
	if Covers(r, []Range{NewRange(0, 30), NewRange(40, 100)}) {
		t.Errorf("gap should not cover")
	}
	if Covers(r, []Range{NewRange(0, 30), NewRange(30, 90)}) {
		t.Errorf("short tiling should not cover")
	}
	if !Covers(r, []Range{NewRange(0, 30), NewRange(30, 30), NewRange(30, 100)}) {
		t.Errorf("empty segments should be ignored")
	}
	if !Covers(NewRange(5, 5), nil) {
		t.Errorf("empty range covered by nothing")
	}
}

func TestContainsRange(t *testing.T) {
	r := NewRange(0, 100)
	if !r.ContainsRange(NewRange(10, 20)) {
		t.Errorf("inner range should be contained")
	}
	if !r.ContainsRange(r) {
		t.Errorf("range contains itself")
	}
	if r.ContainsRange(NewRange(50, 101)) {
		t.Errorf("overflowing range should not be contained")
	}
	if !r.ContainsRange(NewRange(200, 200)) {
		t.Errorf("empty range is contained anywhere")
	}
}

func TestAdjacent(t *testing.T) {
	if !NewRange(0, 5).Adjacent(NewRange(5, 9)) {
		t.Errorf("touching ranges are adjacent")
	}
	if NewRange(0, 5).Adjacent(NewRange(6, 9)) {
		t.Errorf("ranges with a gap are not adjacent")
	}
}

// Property: splitting a range at any point inside it and re-uniting yields
// the original range, and the parts tile the original.
func TestSplitUnionRoundTrip(t *testing.T) {
	f := func(a, b int64, frac uint8) bool {
		lo, hi := a%1_000_000, b%1_000_000
		if lo > hi {
			lo, hi = hi, lo
		}
		r := NewRange(Key(lo), Key(hi))
		if r.IsEmpty() {
			return true
		}
		at := r.Lower + Key(int64(frac)%r.Size())
		l, rt, err := r.SplitAt(at)
		if err != nil {
			return false
		}
		if !Covers(r, []Range{l, rt}) {
			return false
		}
		u, err := l.Union(rt)
		return err == nil && u == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SplitHalf produces two non-overlapping halves whose sizes differ
// by at most one and which tile the original range.
func TestSplitHalfProperty(t *testing.T) {
	f := func(a, b int64) bool {
		lo, hi := a%1_000_000, b%1_000_000
		if lo > hi {
			lo, hi = hi, lo
		}
		r := NewRange(Key(lo), Key(hi))
		if r.IsEmpty() {
			return true
		}
		l, u, err := r.SplitHalf()
		if err != nil {
			return false
		}
		diff := l.Size() - u.Size()
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1 && Covers(r, []Range{l, u}) && !l.Intersects(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Intersection is commutative and its result is contained in both
// operands.
func TestIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		a := randomRange(rng)
		b := randomRange(rng)
		ab := a.Intersection(b)
		ba := b.Intersection(a)
		if ab.IsEmpty() != ba.IsEmpty() {
			t.Fatalf("intersection emptiness not symmetric: %v vs %v", ab, ba)
		}
		if !ab.IsEmpty() && ab != ba {
			t.Fatalf("intersection not commutative: %v vs %v", ab, ba)
		}
		if !ab.IsEmpty() && (!a.ContainsRange(ab) || !b.ContainsRange(ab)) {
			t.Fatalf("intersection %v not contained in %v and %v", ab, a, b)
		}
		if a.Intersects(b) != !ab.IsEmpty() {
			t.Fatalf("Intersects disagrees with Intersection for %v, %v", a, b)
		}
	}
}

func randomRange(rng *rand.Rand) Range {
	lo := rng.Int63n(1000)
	hi := lo + rng.Int63n(1000)
	return NewRange(Key(lo), Key(hi))
}
