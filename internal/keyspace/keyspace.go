// Package keyspace defines the one-dimensional key domain that BATON
// partitions across peers, together with the half-open range arithmetic the
// overlay relies on (splitting a range when a child joins, merging when a
// peer leaves, intersecting with a query range, and shifting a boundary
// during load balancing).
//
// The paper evaluates on integer keys drawn from [1, 10^9); Key is an int64
// so the same code handles any signed integer domain.
package keyspace

import (
	"errors"
	"fmt"
)

// Key is a point in the one-dimensional key space managed by the overlay.
type Key int64

// Default domain used by the paper's evaluation: keys in [1, 10^9).
const (
	DomainMin Key = 1
	DomainMax Key = 1_000_000_000
)

// ErrEmptyRange is returned by operations that require a non-empty range.
var ErrEmptyRange = errors.New("keyspace: empty range")

// Range is a half-open interval [Lower, Upper) of the key space.
// A Range with Lower == Upper is empty.
type Range struct {
	Lower Key
	Upper Key
}

// NewRange returns the half-open range [lower, upper). It panics if
// lower > upper because such a range is never meaningful in the overlay and
// indicates a programming error.
func NewRange(lower, upper Key) Range {
	if lower > upper {
		panic(fmt.Sprintf("keyspace: inverted range [%d, %d)", lower, upper))
	}
	return Range{Lower: lower, Upper: upper}
}

// FullDomain returns the default key domain of the paper, [1, 10^9).
func FullDomain() Range { return Range{Lower: DomainMin, Upper: DomainMax} }

// IsEmpty reports whether the range contains no keys.
func (r Range) IsEmpty() bool { return r.Lower >= r.Upper }

// Size returns the number of keys contained in the range.
func (r Range) Size() int64 {
	if r.IsEmpty() {
		return 0
	}
	return int64(r.Upper - r.Lower)
}

// Contains reports whether k lies inside the half-open range.
func (r Range) Contains(k Key) bool { return k >= r.Lower && k < r.Upper }

// ContainsRange reports whether other lies entirely inside r.
func (r Range) ContainsRange(other Range) bool {
	if other.IsEmpty() {
		return true
	}
	return other.Lower >= r.Lower && other.Upper <= r.Upper
}

// Intersects reports whether the two ranges share at least one key.
func (r Range) Intersects(other Range) bool {
	return r.Lower < other.Upper && other.Lower < r.Upper
}

// Intersection returns the overlap of the two ranges. The result may be
// empty.
func (r Range) Intersection(other Range) Range {
	lo := r.Lower
	if other.Lower > lo {
		lo = other.Lower
	}
	hi := r.Upper
	if other.Upper < hi {
		hi = other.Upper
	}
	if lo > hi {
		return Range{Lower: lo, Upper: lo}
	}
	return Range{Lower: lo, Upper: hi}
}

// SplitAt cuts the range into [Lower, at) and [at, Upper). It returns an
// error if at lies outside the range boundaries.
func (r Range) SplitAt(at Key) (left, right Range, err error) {
	if at < r.Lower || at > r.Upper {
		return Range{}, Range{}, fmt.Errorf("keyspace: split point %d outside range %v", at, r)
	}
	return Range{r.Lower, at}, Range{at, r.Upper}, nil
}

// SplitHalf splits the range in two halves, returning the lower and upper
// half. When a BATON node accepts a child it hands half of its range to the
// child. The lower half receives the extra key when the size is odd.
func (r Range) SplitHalf() (lower, upper Range, err error) {
	if r.IsEmpty() {
		return Range{}, Range{}, ErrEmptyRange
	}
	mid := r.Lower + Key((r.Size()+1)/2)
	return Range{r.Lower, mid}, Range{mid, r.Upper}, nil
}

// Adjacent reports whether other starts exactly where r ends or vice versa.
func (r Range) Adjacent(other Range) bool {
	return r.Upper == other.Lower || other.Upper == r.Lower
}

// Union merges two ranges that are adjacent or overlapping. It returns an
// error if the ranges are disjoint and non-adjacent, because the result would
// not be a contiguous interval.
func (r Range) Union(other Range) (Range, error) {
	if r.IsEmpty() {
		return other, nil
	}
	if other.IsEmpty() {
		return r, nil
	}
	if !r.Intersects(other) && !r.Adjacent(other) {
		return Range{}, fmt.Errorf("keyspace: union of disjoint ranges %v and %v", r, other)
	}
	lo := r.Lower
	if other.Lower < lo {
		lo = other.Lower
	}
	hi := r.Upper
	if other.Upper > hi {
		hi = other.Upper
	}
	return Range{lo, hi}, nil
}

// Clamp returns k restricted to the closed interval [Lower, Upper-1]. Clamp
// on an empty range returns Lower.
func (r Range) Clamp(k Key) Key {
	if k < r.Lower {
		return r.Lower
	}
	if !r.IsEmpty() && k >= r.Upper {
		return r.Upper - 1
	}
	return k
}

// String renders the range in the half-open interval notation used in the
// paper's figures.
func (r Range) String() string {
	return fmt.Sprintf("[%d, %d)", r.Lower, r.Upper)
}

// Covers reports whether the ordered, non-overlapping ranges in parts exactly
// tile r, in order, with no gaps. It is used by the overlay's invariant
// checker to verify that the in-order traversal of peers partitions the key
// space.
func Covers(r Range, parts []Range) bool {
	if r.IsEmpty() {
		return len(parts) == 0 || allEmpty(parts)
	}
	next := r.Lower
	for _, p := range parts {
		if p.IsEmpty() {
			continue
		}
		if p.Lower != next {
			return false
		}
		next = p.Upper
	}
	return next == r.Upper
}

func allEmpty(parts []Range) bool {
	for _, p := range parts {
		if !p.IsEmpty() {
			return false
		}
	}
	return true
}
