// Package query is the thin planning layer in front of the cluster's range
// path. BATON's ring makes selectivity visible for free: the published
// epoch-tagged topology snapshot names every member's lower bound in key
// order, so the number of peers a range touches — its peer-span — is two
// binary searches against state the client already holds. No statistics
// machinery, no messages, no locks; the same discipline as the balancer's
// balanceLikely pre-check.
//
// The package holds the three pieces the planner needs and nothing else:
//
//   - Planner picks serial vs parallel execution per request from the
//     estimated peer-span, with the crossover self-tuned from the latencies
//     the cluster itself observes (per span-bucket obs.Histogram pairs fed
//     by every adaptive query and compared by mean, with a slow exploration
//     schedule so both plans keep fresh data) instead of a hard-coded
//     constant.
//   - Pred is the serialisable predicate of the pushdown path: plain data
//     (no function values), evaluated at the owning peer so non-matching
//     items never cross the wire, with a limit that terminates serial
//     walks early.
//   - Cache is the small plan+route cache keyed by (range bucket, epoch):
//     repeated ranges skip both the span estimate and the owner lookup,
//     and an epoch bump — every ownership publication — invalidates
//     entries implicitly because the key no longer matches.
//
// The package is deliberately free of p2p types: it plans over integers
// (spans, epochs, ring indices) that the cluster extracts from its
// published topology, which keeps it testable without a live cluster.
package query

import (
	"math/bits"
	"os"
	"sort"
	"sync/atomic"

	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/store"
)

var planDebug = os.Getenv("BATON_PLAN_DEBUG") != ""

// Plan is a planned execution strategy for one range query.
type Plan int8

const (
	// PlanSerial walks the right-adjacent chain one peer at a time
	// (Section IV-B): minimal fan-out, minimal tail latency on narrow
	// ranges, linear latency in the peer-span.
	PlanSerial Plan = iota
	// PlanParallel scatters the range across the covering peers and
	// gathers the partial answers: logarithmic message depth, wins on
	// wide ranges, loses on narrow ones where the scatter overhead
	// dominates.
	PlanParallel
)

// String names the plan for reports and flags.
func (p Plan) String() string {
	if p == PlanParallel {
		return "parallel"
	}
	return "serial"
}

// spanBuckets is the number of log2 span buckets the planner tunes over;
// bucket i covers spans in [2^i, 2^(i+1)). 16 buckets cover spans up to
// 65535 peers, far beyond any cluster this package meets.
const spanBuckets = 16

// spanBucket maps a peer-span to its log2 bucket.
func spanBucket(span int) int {
	if span < 1 {
		span = 1
	}
	b := bits.Len(uint(span)) - 1
	if b >= spanBuckets {
		b = spanBuckets - 1
	}
	return b
}

// Tuning constants of the self-adjusting crossover. The planner tunes by
// burst trials, not per-query greedy comparison, because the comparison is
// game-theoretic: a lone serial walk in a parallel-dominated mix rides
// short queues and looks fast, while every serial query it convoys with
// degrades the mix — greedy selection converges to a blended equilibrium
// worse than either pure plan. A burst trial measures each plan with the
// bucket's in-flight queries all running the trial plan, and the cycle
// commits to one answer for a long stretch instead of re-litigating every
// decision.
const (
	// trialLen is the length, in decisions, of each plan's trial burst at
	// the start of a tuning cycle. The parallel burst runs first: the
	// scatter pays its cost up front where a burst can see it, while the
	// chain walk's wake (accumulator payloads queued through many peers)
	// drains slowly and would contaminate a following burst far more.
	trialLen = 64
	// commitLen is the length of the committed stretch after the two
	// trials. The trials are ~1.5% of the cycle, so even a 2× slower
	// losing plan costs under 1% aggregate throughput to keep measuring.
	commitLen = 8192
	// cycleLen is the full tuning cycle.
	cycleLen = 2*trialLen + commitLen
	// decayAt caps a plan's latency histogram: at this many samples it is
	// halved (obs.Histogram Decay), bounding how long an old regime can
	// outvote fresh trial data. Cycle starts decay both histograms too, so
	// the comparison always leans on the most recent trials.
	decayAt = 2048
	// defaultCrossover seeds buckets with no latency data yet: a range
	// touching fewer peers than this runs serially. It only matters until
	// the first trial pair completes; after that the measured trials decide.
	defaultCrossover = 4
)

// occupancyFactor converts a serial trial's burst latency into the
// cluster-wide service demand that sustained throughput is actually made
// of. A span-s chain walk holds s peer-service slots in sequence and ships
// its growing accumulator through every remaining hop, so its demand on
// the cluster is ~(s/2)× its unloaded latency; a scatter's branches occupy
// their peers concurrently and ship each item once, so its burst latency
// already is its demand. Without this correction the comparison is rigged:
// burst trials run on short queues where the chain walk's congestion
// externality — the thing that convoys a sustained serial regime — has not
// built up yet, so raw burst means systematically flatter serial.
func occupancyFactor(span int) float64 {
	if span < 2 {
		return 1
	}
	return float64(span) / 2
}

// planBucket is the per-span-bucket tuning state: one lock-free
// obs.Histogram of observed latency per plan, a committed plan for the
// current cycle, and the decision counter driving the trial schedule. The
// histograms are compared by mean — not an EWMA, not a percentile —
// because the mean is the throughput-relevant statistic: the serial walk's
// latency is heavy-tailed under load (fast typical chains, convoyed
// stragglers), and a typical-sample statistic keeps voting for a plan
// whose tail is eating the throughput.
type planBucket struct {
	hist      [2]obs.Histogram // observed latency per plan, nanoseconds
	seq       atomic.Int64     // decision counter driving the trial schedule
	committed atomic.Int32     // 1+Plan committed this cycle, 0 before any commit
}

// Planner picks serial vs parallel execution per range request and tunes
// the crossover from observed latencies. The zero value is not ready;
// use NewPlanner. All methods are safe for concurrent use and lock-free.
type Planner struct {
	buckets [spanBuckets]planBucket
}

// NewPlanner returns a planner seeded with the default crossover; it
// starts tuning as soon as Observe feeds it latencies.
func NewPlanner() *Planner { return &Planner{} }

// Choose picks the plan for a range with the given estimated peer-span.
// Each span bucket cycles through a parallel trial burst, a serial trial
// burst, and a long committed stretch running whichever plan's trial
// measured the lower service demand (burst mean latency, occupancy-
// corrected for the chain walk) — re-trialled every cycle so the crossover
// drifts with the workload instead of being hard-coded.
func (pl *Planner) Choose(span int) Plan {
	b := &pl.buckets[spanBucket(span)]
	pos := (b.seq.Add(1) - 1) % cycleLen
	switch {
	case pos == 0:
		// A new cycle: age out the previous cycles' data so this cycle's
		// trials dominate the comparison. Races with concurrent observers
		// just smear the halving — the comparison is advisory.
		b.hist[PlanSerial].Decay()
		b.hist[PlanParallel].Decay()
		return PlanParallel
	case pos < trialLen:
		return PlanParallel
	case pos < 2*trialLen:
		return PlanSerial
	case pos == 2*trialLen:
		// Commit once per cycle. Exactly one decision lands on this pos, so
		// the comparison runs once and the stored answer holds for the
		// whole committed stretch — re-comparing every decision would let
		// the committed plan's accruing samples drift its mean up against
		// the loser's frozen trial mean and flip-flop into a blended mix.
		p := pl.commitPlan(b, span)
		b.committed.Store(int32(p) + 1)
		return p
	}
	if c := b.committed.Load(); c != 0 {
		return Plan(c - 1)
	}
	// A commit-phase decision raced ahead of the committing one (or the
	// counter started mid-cycle): fall back to the seeded crossover.
	if span < defaultCrossover {
		return PlanSerial
	}
	return PlanParallel
}

// commitPlan evaluates one cycle's trial data for a bucket.
func (pl *Planner) commitPlan(b *planBucket, span int) Plan {
	sn, pn := b.hist[PlanSerial].Count(), b.hist[PlanParallel].Count()
	serial := b.hist[PlanSerial].Mean() * occupancyFactor(span)
	parallel := b.hist[PlanParallel].Mean()
	if planDebug {
		println("plan-debug commit bucket", spanBucket(span), "span", span,
			"serial n/demand", sn, int64(serial), "parallel n/demand", pn, int64(parallel))
	}
	if sn == 0 || pn == 0 {
		// No measurements (the caller never fed Observe, or every trial
		// query failed): fall back to the seeded crossover.
		if span < defaultCrossover {
			return PlanSerial
		}
		return PlanParallel
	}
	if parallel < serial {
		return PlanParallel
	}
	return PlanSerial
}

// Observe feeds one measured query latency back into the tuning state.
func (pl *Planner) Observe(p Plan, span int, ns int64) {
	if p != PlanSerial && p != PlanParallel {
		return
	}
	b := &pl.buckets[spanBucket(span)]
	b.hist[p].Observe(ns)
	if b.hist[p].Count() >= decayAt {
		b.hist[p].Decay()
	}
}

// Pred is a pushdown predicate: plain serialisable data (no function
// values) a client attaches to a get or range request, evaluated at the
// owning peer so items that cannot match never cross the wire.
//
// The zero value matches everything. All fields combine with AND:
//
//   - MinValueLen / MaxValueLen bound the stored value's length in bytes
//     (MaxValueLen 0 means unbounded).
//   - Keys, when non-empty, restricts matches to the listed keys. The
//     slice is sorted on first use; callers must not mutate it after
//     attaching the predicate to a request.
//   - Limit, when positive, caps how many matching items a range query
//     returns. A serial walk stops forwarding down the adjacent chain the
//     moment the limit is reached, and a scatter branch never ships more
//     than Limit items.
type Pred struct {
	MinValueLen int
	MaxValueLen int
	Keys        []keyspace.Key
	Limit       int
}

// Normalize prepares the predicate for evaluation (sorts the key set).
// The cluster calls it once when the predicate is attached to a request;
// it is idempotent.
func (p *Pred) Normalize() {
	if p == nil || len(p.Keys) == 0 {
		return
	}
	if !sort.SliceIsSorted(p.Keys, func(i, j int) bool { return p.Keys[i] < p.Keys[j] }) {
		sort.Slice(p.Keys, func(i, j int) bool { return p.Keys[i] < p.Keys[j] })
	}
}

// Match reports whether the item with the given key and stored value
// satisfies the predicate. A nil predicate matches everything.
func (p *Pred) Match(key keyspace.Key, value []byte) bool {
	if p == nil {
		return true
	}
	if len(value) < p.MinValueLen {
		return false
	}
	if p.MaxValueLen > 0 && len(value) > p.MaxValueLen {
		return false
	}
	if len(p.Keys) > 0 {
		i := sort.Search(len(p.Keys), func(i int) bool { return p.Keys[i] >= key })
		if i == len(p.Keys) || p.Keys[i] != key {
			return false
		}
	}
	return true
}

// MatchItem is Match for a store item.
func (p *Pred) MatchItem(it store.Item) bool { return p.Match(it.Key, it.Value) }

// LimitOrZero returns the predicate's item limit, or 0 (unlimited) for a
// nil predicate — the nil-safe read the serving paths use.
func (p *Pred) LimitOrZero() int {
	if p == nil {
		return 0
	}
	return p.Limit
}

// cacheSlots sizes the plan cache. Power of two; 256 entries cover far
// more distinct (range bucket, epoch) pairs than a workload's hot set
// while keeping the cache under 8KB.
const cacheSlots = 256

// CacheEntry is one cached planning result: the estimated peer-span of a
// range bucket and the ring index of the peer owning its lower bound,
// valid for exactly one topology epoch.
type CacheEntry struct {
	bucket   uint64
	epoch    uint64
	Span     int
	OwnerIdx int
}

// Cache is the small plan+route cache: repeated ranges skip the span
// estimate and the owner lookup. Entries are keyed by (range bucket,
// epoch); an epoch bump invalidates every entry implicitly because the
// stored epoch no longer matches, so structural changes need no cache
// flush. Lock-free: slots are atomic pointers to immutable entries.
type Cache struct {
	slots [cacheSlots]atomic.Pointer[CacheEntry]
}

// NewCache returns an empty plan cache.
func NewCache() *Cache { return &Cache{} }

// BucketOf quantises a range into its cache bucket: ranges with the same
// width magnitude starting in the same width-aligned window share a
// bucket. Repeats of the same range always hit the same bucket; distinct
// ranges that share one get the same cached span and entry point, which
// costs at most a few forwarding hops (the overlay re-routes a misaimed
// range), never correctness.
func BucketOf(r keyspace.Range) uint64 {
	w := uint64(r.Upper - r.Lower)
	wlog := uint64(bits.Len64(w))
	return uint64(r.Lower)>>wlog<<6 | wlog
}

// Get returns the entry cached for the bucket at the given epoch.
func (c *Cache) Get(bucket, epoch uint64) (CacheEntry, bool) {
	e := c.slots[bucket%cacheSlots].Load()
	if e == nil || e.bucket != bucket || e.epoch != epoch {
		return CacheEntry{}, false
	}
	return *e, true
}

// Put stores a planning result for the bucket at the given epoch.
func (c *Cache) Put(bucket, epoch uint64, span, ownerIdx int) {
	c.slots[bucket%cacheSlots].Store(&CacheEntry{
		bucket:   bucket,
		epoch:    epoch,
		Span:     span,
		OwnerIdx: ownerIdx,
	})
}
