package query

import (
	"sync"
	"testing"

	"baton/internal/keyspace"
)

// TestPlannerTrialSchedule pins the tuning schedule: every cycle opens
// with a parallel trial burst (the plan whose wake drains fast goes
// first), then a serial trial burst, then commits.
func TestPlannerTrialSchedule(t *testing.T) {
	pl := NewPlanner()
	for i := 0; i < trialLen; i++ {
		if got := pl.Choose(64); got != PlanParallel {
			t.Fatalf("decision %d: got %v, want the parallel trial burst", i, got)
		}
	}
	for i := 0; i < trialLen; i++ {
		if got := pl.Choose(64); got != PlanSerial {
			t.Fatalf("decision %d: got %v, want the serial trial burst", trialLen+i, got)
		}
	}
}

// TestPlannerColdPrior pins the seeded crossover: with no latency data at
// all (Observe never called), commit-phase decisions run narrow ranges
// serially and wide ranges in parallel.
func TestPlannerColdPrior(t *testing.T) {
	pl := NewPlanner()
	// Burn both buckets' trial bursts without feeding any measurements.
	for i := 0; i < 2*trialLen; i++ {
		pl.Choose(1)
		pl.Choose(64)
	}
	for i := 0; i < 12; i++ {
		if got := pl.Choose(1); got != PlanSerial {
			t.Fatalf("cold commit for span 1: got %v, want serial", got)
		}
		if got := pl.Choose(64); got != PlanParallel {
			t.Fatalf("cold commit for span 64: got %v, want parallel", got)
		}
	}
}

// TestPlannerLearnsCrossover feeds the planner latencies where the seeded
// prior is wrong in both directions and checks the measured data wins.
// The comparison is occupancy-corrected: a span-s chain walk's service
// demand is ~(s/2)× its burst latency, so at span 64 serial must be more
// than 32× faster than parallel to win the commit — here 10µs vs 900µs
// (demand 320µs vs 900µs) commits the wide bucket to serial. On the
// narrow span the factor is 1 and parallel's raw mean wins directly.
func TestPlannerLearnsCrossover(t *testing.T) {
	pl := NewPlanner()
	// Walk both buckets through their trial bursts, answering each trial
	// decision with a latency that inverts the seeded prior.
	for i := 0; i < 2*trialLen+1; i++ {
		switch pl.Choose(64) {
		case PlanSerial:
			pl.Observe(PlanSerial, 64, 10_000) // serial very fast on wide spans
		case PlanParallel:
			pl.Observe(PlanParallel, 64, 900_000) // parallel slow there
		}
		switch pl.Choose(2) {
		case PlanSerial:
			pl.Observe(PlanSerial, 2, 800_000) // serial slow on narrow spans
		case PlanParallel:
			pl.Observe(PlanParallel, 2, 50_000) // parallel fast there
		}
	}
	const n = 100
	for i := 0; i < n; i++ {
		if got := pl.Choose(64); got != PlanSerial {
			t.Fatalf("commit decision %d for span 64: got %v, want serial (measured demand lower)", i, got)
		}
		if got := pl.Choose(2); got != PlanParallel {
			t.Fatalf("commit decision %d for span 2: got %v, want parallel (measured demand lower)", i, got)
		}
	}
}

// TestPlannerOccupancyGuard pins the correction's point: a serial trial
// that looks only modestly faster than parallel on a wide span (burst
// means flatter the chain walk, whose congestion cost a short burst never
// sees) must still commit to parallel once demand is compared.
func TestPlannerOccupancyGuard(t *testing.T) {
	pl := NewPlanner()
	for i := 0; i < 2*trialLen+1; i++ {
		switch pl.Choose(16) {
		case PlanSerial:
			pl.Observe(PlanSerial, 16, 200_000) // burst-fast, demand 1.6ms
		case PlanParallel:
			pl.Observe(PlanParallel, 16, 600_000)
		}
	}
	for i := 0; i < 100; i++ {
		if got := pl.Choose(16); got != PlanParallel {
			t.Fatalf("commit decision %d for span 16: got %v, want parallel (serial demand 8x its burst mean)", i, got)
		}
	}
}

// TestPlannerConcurrent exercises Choose/Observe from many goroutines so
// the race detector can audit the lock-free tuning state.
func TestPlannerConcurrent(t *testing.T) {
	pl := NewPlanner()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				span := 1 << (i % 8)
				p := pl.Choose(span)
				pl.Observe(p, span, int64(1000*(i+1)))
			}
		}(w)
	}
	wg.Wait()
}

func TestSpanBucket(t *testing.T) {
	cases := []struct{ span, bucket int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, spanBuckets - 1},
	}
	for _, c := range cases {
		if got := spanBucket(c.span); got != c.bucket {
			t.Errorf("spanBucket(%d) = %d, want %d", c.span, got, c.bucket)
		}
	}
}

// TestPredMatch pins the predicate contract: zero value matches all,
// fields AND together, key membership uses the sorted set.
func TestPredMatch(t *testing.T) {
	var nilPred *Pred
	if !nilPred.Match(1, nil) {
		t.Error("nil predicate must match everything")
	}
	if !(&Pred{}).Match(7, []byte("x")) {
		t.Error("zero predicate must match everything")
	}
	p := &Pred{MinValueLen: 2, MaxValueLen: 4}
	for _, c := range []struct {
		v  string
		ok bool
	}{{"", false}, {"a", false}, {"ab", true}, {"abcd", true}, {"abcde", false}} {
		if got := p.Match(1, []byte(c.v)); got != c.ok {
			t.Errorf("len pred on %q = %v, want %v", c.v, got, c.ok)
		}
	}
	ks := &Pred{Keys: []keyspace.Key{30, 10, 20}} // unsorted on purpose
	ks.Normalize()
	for _, c := range []struct {
		k  keyspace.Key
		ok bool
	}{{10, true}, {20, true}, {30, true}, {15, false}, {40, false}} {
		if got := ks.Match(c.k, nil); got != c.ok {
			t.Errorf("key-set pred on %d = %v, want %v", c.k, got, c.ok)
		}
	}
}

// TestCacheEpochInvalidation pins the invalidation rule: an entry stored
// under one epoch must not be served under any other, so an epoch bump
// (a membership change publishing new ownership) implicitly empties the
// cache with no flush.
func TestCacheEpochInvalidation(t *testing.T) {
	c := NewCache()
	r := keyspace.NewRange(1000, 5000)
	b := BucketOf(r)
	c.Put(b, 7, 3, 12)
	e, ok := c.Get(b, 7)
	if !ok || e.Span != 3 || e.OwnerIdx != 12 {
		t.Fatalf("Get after Put = %+v, %v; want span 3 ownerIdx 12", e, ok)
	}
	if _, ok := c.Get(b, 8); ok {
		t.Error("entry from epoch 7 served at epoch 8: epoch bump must invalidate")
	}
	if _, ok := c.Get(b+1, 7); ok {
		t.Error("entry served for a different bucket")
	}
}

// TestBucketOfStability pins that repeats of the same range share a bucket
// and that clearly different ranges do not all collide onto one.
func TestBucketOfStability(t *testing.T) {
	r := keyspace.NewRange(123456, 234567)
	if BucketOf(r) != BucketOf(r) {
		t.Error("BucketOf must be deterministic")
	}
	seen := map[uint64]bool{}
	for lo := keyspace.Key(0); lo < 1_000_000; lo += 100_000 {
		seen[BucketOf(keyspace.NewRange(lo, lo+1000))] = true
	}
	if len(seen) < 5 {
		t.Errorf("10 well-spread ranges mapped to only %d buckets", len(seen))
	}
}
