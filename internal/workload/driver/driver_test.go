package driver

import (
	"errors"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/workload"
)

// driverCluster builds a loaded live cluster for driver tests.
func driverCluster(t *testing.T, peers, items int, seed int64) (*p2p.Cluster, []keyspace.Key) {
	t.Helper()
	c, keys, err := BuildCluster(peers, items, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, keys
}

func TestDriverMixedWorkload(t *testing.T) {
	c, keys := driverCluster(t, 60, 600, 1)
	rep := Run(c, Config{
		Clients:          8,
		Ops:              2000,
		GetFraction:      0.6,
		PutFraction:      0.2,
		DeleteFraction:   0.1,
		RangeFraction:    0.1,
		RangeSelectivity: 0.02,
		Keys:             keys,
		Seed:             2,
	})
	if rep.Ops == 0 || rep.Ops > 2000 {
		t.Fatalf("ops = %d, want in (0, 2000]", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Fatalf("healthy cluster produced %d errors", rep.Errors)
	}
	if rep.OpsPerSec <= 0 {
		t.Fatalf("throughput = %f", rep.OpsPerSec)
	}
	for _, op := range []Op{OpGet, OpPut, OpDelete, OpRange} {
		if rep.Latency[op].Count() == 0 {
			t.Fatalf("no %s operations recorded", op)
		}
	}
	all := rep.Latency[OpAll]
	if all.Percentile(0.5) > all.Percentile(0.99) {
		t.Fatal("p50 above p99")
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestDriverWithChurn(t *testing.T) {
	c, keys := driverCluster(t, 100, 500, 3)
	done := make(chan Report, 1)
	go func() {
		done <- Run(c, Config{
			Clients:       12,
			Ops:           3000,
			GetFraction:   0.5,
			PutFraction:   0.3,
			RangeFraction: 0.2,
			Keys:          keys,
			KillPeers:     15,
			Seed:          4,
		})
	}()
	var rep Report
	select {
	case rep = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("driver hung under churn")
	}
	if rep.Killed == 0 {
		t.Fatal("churn configured but no peer was killed")
	}
	if rep.Ops == 0 {
		t.Fatal("no operations completed under churn")
	}
	// Errors are expected once peers die; the cluster as a whole must keep
	// answering (the run completed, which the timeout above asserts).
}

// TestDriverFaultChurn runs matched kill/recover rates under load: crashes
// open ErrOwnerDown windows, repairs close them, and by the end every dead
// peer that a recover event found has been repaired — the counters must
// report both sides, and the quiesced cluster must pass the structural
// audit.
func TestDriverFaultChurn(t *testing.T) {
	c, keys := driverCluster(t, 60, 800, 23)
	done := make(chan Report, 1)
	go func() {
		done <- Run(c, Config{
			Clients:       10,
			Ops:           4000,
			GetFraction:   0.6,
			PutFraction:   0.3,
			RangeFraction: 0.1,
			Keys:          keys,
			KillPeers:     8,
			RecoverPeers:  8,
			Seed:          24,
		})
	}()
	var rep Report
	select {
	case rep = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("driver hung under fault churn")
	}
	if rep.Killed == 0 {
		t.Fatal("fault churn configured but no peer was killed")
	}
	if rep.Recovered == 0 {
		t.Fatalf("%d peers killed but none recovered", rep.Killed)
	}
	// Repair any peer the interleaving left dead, then audit. A lost
	// replica is tolerated here: with several concurrent crashes a peer and
	// its holder can be down at once, which single-copy replication does
	// not protect (the storm test in internal/p2p pins down the guarantee).
	for _, id := range c.PeerIDs() {
		if !c.Alive(id) {
			if _, err := c.Recover(id); err != nil && !errors.Is(err, p2p.ErrReplicaLost) {
				t.Fatalf("final repair of %d: %v", id, err)
			}
		}
	}
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySnapshot(c.Domain(), snaps); err != nil {
		t.Fatalf("post-fault-churn invariants: %v", err)
	}
}

// TestDriverAutoRecover: with the background repairer enabled, kills alone
// heal without explicit recover events.
func TestDriverAutoRecover(t *testing.T) {
	c, keys := driverCluster(t, 40, 400, 29)
	done := make(chan Report, 1)
	go func() {
		done <- Run(c, Config{
			Clients:     8,
			Ops:         4000,
			GetFraction: 0.7,
			PutFraction: 0.3,
			Keys:        keys,
			KillPeers:   5,
			AutoRecover: true,
			Seed:        30,
		})
	}()
	var rep Report
	select {
	case rep = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("driver hung with auto-recover")
	}
	if rep.Killed == 0 {
		t.Fatal("no peer was killed")
	}
	// The repairer is asynchronous; give the last observation time to land,
	// then every killed peer must have been repaired out of the membership.
	deadline := time.Now().Add(20 * time.Second)
	for {
		dead := 0
		for _, id := range c.PeerIDs() {
			if !c.Alive(id) {
				dead++
				// Nudge the repairer: an observation is what queues repair.
				c.Get(id, keys[0])
			}
		}
		if dead == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d peers still dead %s after the run with auto-recover on", dead, "20s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDriverSteadyChurn runs matched join/depart rates under load: the
// cluster size must stay within ±10% of the start, the per-event counters
// must report the mix, and the quiesced structure must still satisfy the
// simulator's invariants.
func TestDriverSteadyChurn(t *testing.T) {
	c, keys := driverCluster(t, 50, 500, 13)
	start := c.Size()
	done := make(chan Report, 1)
	go func() {
		done <- Run(c, Config{
			Clients:       8,
			Ops:           4000,
			GetFraction:   0.5,
			PutFraction:   0.3,
			RangeFraction: 0.2,
			Keys:          keys,
			JoinPeers:     12,
			DepartPeers:   12,
			Seed:          14,
		})
	}()
	var rep Report
	select {
	case rep = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("driver hung under steady churn")
	}
	if rep.Joined == 0 || rep.Departed == 0 {
		t.Fatalf("steady churn executed joined=%d departed=%d, want both > 0", rep.Joined, rep.Departed)
	}
	end := c.Size()
	if lo, hi := start*9/10, start*11/10; end < lo || end > hi {
		t.Fatalf("cluster size drifted from %d to %d under matched churn (want within ±10%%)", start, end)
	}
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySnapshot(c.Domain(), snaps); err != nil {
		t.Fatalf("post-churn invariants: %v", err)
	}
	// No graceful event loses data: every pre-loaded key stays readable.
	via := c.PeerIDs()[0]
	for _, k := range keys[:100] {
		if _, found, _, err := c.Get(via, k); err != nil || !found {
			t.Fatalf("key %d unreadable after steady churn: found=%v err=%v", k, found, err)
		}
	}
}

// TestDriverChurnSparesLastPeer is the regression test for the scheduler
// edge case where KillPeers >= cluster size killed the final peer and the
// run degenerated to 100% errors: the cap must always leave a survivor.
func TestDriverChurnSparesLastPeer(t *testing.T) {
	c, keys := driverCluster(t, 3, 50, 15)
	done := make(chan Report, 1)
	go func() {
		done <- Run(c, Config{
			Clients:     4,
			Ops:         2000,
			GetFraction: 1,
			Keys:        keys,
			KillPeers:   10, // far more than the cluster holds
			Seed:        16,
		})
	}()
	var rep Report
	select {
	case rep = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("driver hung when churn exceeded cluster size")
	}
	if rep.Killed >= 3 {
		t.Fatalf("killed %d of 3 peers; the cap must spare one survivor", rep.Killed)
	}
	alive := 0
	for _, id := range c.PeerIDs() {
		if c.Alive(id) {
			alive++
		}
	}
	if alive < 1 {
		t.Fatal("no peer survived the churn run")
	}
	// The surviving peer keeps serving its own share of the key space
	// (keys owned by killed peers legitimately answer ErrOwnerDown).
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range snaps {
		if !c.Alive(ps.ID) {
			continue
		}
		k := ps.Range.Lower
		if _, err := c.Put(ps.ID, k, []byte("post-churn")); err != nil {
			t.Fatalf("survivor %d cannot serve its own range: %v", ps.ID, err)
		}
		if _, found, _, err := c.Get(ps.ID, k); err != nil || !found {
			t.Fatalf("survivor %d lost its own write: found=%v err=%v", ps.ID, found, err)
		}
		break
	}
}

func TestDriverBulkAndSerialRange(t *testing.T) {
	c, keys := driverCluster(t, 40, 200, 5)
	rep := Run(c, Config{
		Clients:       4,
		Ops:           800,
		PutFraction:   0.5,
		RangeFraction: 0.5,
		BulkSize:      16,
		SerialRange:   true,
		Keys:          keys,
		Seed:          6,
	})
	if rep.Latency[OpBulkPut].Count() == 0 {
		t.Fatal("BulkSize set but no bulk puts recorded")
	}
	if rep.Latency[OpPut].Count() != 0 {
		t.Fatal("BulkSize set but singleton puts recorded")
	}
	if rep.Latency[OpRange].Count() == 0 {
		t.Fatal("no range queries recorded")
	}
	if rep.Errors != 0 {
		t.Fatalf("healthy cluster produced %d errors", rep.Errors)
	}
}

func TestDriverDurationCap(t *testing.T) {
	c, keys := driverCluster(t, 20, 100, 7)
	start := time.Now()
	rep := Run(c, Config{
		Clients:  4,
		Duration: 50 * time.Millisecond,
		Keys:     keys,
		Seed:     8,
	})
	if rep.Ops == 0 {
		t.Fatal("no operations in a timed run")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed run took %v", elapsed)
	}
}

func TestDriverFullDomainSelectivity(t *testing.T) {
	c, keys := driverCluster(t, 20, 100, 9)
	// Selectivity >= 1 must clamp to whole-domain scans, not panic.
	rep := Run(c, Config{
		Clients:          2,
		Ops:              40,
		RangeFraction:    1,
		RangeSelectivity: 5,
		Keys:             keys,
		Seed:             10,
	})
	if rep.Errors != 0 {
		t.Fatalf("full-domain ranges errored %d times", rep.Errors)
	}
	if rep.Latency[OpRange].Count() == 0 {
		t.Fatal("no range queries recorded")
	}
}

// TestDriverZipfSkewsLoad: with Distribution=Zipf the generated write
// stream piles items onto a few peers — the skewed-workload scenario — and
// the uniform stream does not.
func TestDriverZipfSkewsLoad(t *testing.T) {
	ratioAfter := func(dist workload.Distribution) float64 {
		c, _ := driverCluster(t, 24, 0, 13)
		rep := Run(c, Config{
			Clients:      4,
			Ops:          3000,
			PutFraction:  1,
			Distribution: dist,
			ZipfTheta:    1.0,
			Seed:         14,
		})
		if rep.Errors != 0 {
			t.Fatalf("%s run errored %d times", dist, rep.Errors)
		}
		r, err := c.ImbalanceRatio()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	uniform := ratioAfter(workload.Uniform)
	zipf := ratioAfter(workload.Zipf)
	t.Logf("imbalance after uniform %.2f, after zipf %.2f", uniform, zipf)
	if zipf < 2*uniform {
		t.Fatalf("zipf writes should skew the stored load: uniform ratio %.2f, zipf ratio %.2f", uniform, zipf)
	}
}

// TestDriverAutoBalance: the AutoBalance knob starts the cluster's
// background balancer, the report tallies its actions, and the run ends
// with a visibly lower imbalance than the balancer-off twin.
func TestDriverAutoBalance(t *testing.T) {
	run := func(balance bool) (Report, int64, float64) {
		c, _, err := BuildClusterDist(24, 3000, 15, workload.Zipf, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		rep := Run(c, Config{
			Clients:      4,
			Ops:          2000,
			GetFraction:  0.6,
			PutFraction:  0.4,
			Distribution: workload.Zipf,
			ZipfTheta:    1.0,
			AutoBalance:  balance,
			Seed:         16,
		})
		// Quiesce the balancer's remaining work so the comparison is not a
		// race against the ticker (a short run can end between ticks; the
		// report only tallies actions that landed inside the run).
		if balance {
			if _, err := c.BalanceUntilStable(p2p.AutoBalanceConfig{}, 200); err != nil {
				t.Fatal(err)
			}
		}
		r, err := c.ImbalanceRatio()
		if err != nil {
			t.Fatal(err)
		}
		return rep, c.BalanceEvents(), r
	}
	repOff, eventsOff, off := run(false)
	repOn, eventsOn, on := run(true)
	t.Logf("imbalance off %.2f (events %d), on %.2f (events %d, in-run %d)", off, eventsOff, on, eventsOn, repOn.Rebalanced)
	if repOff.Rebalanced != 0 || eventsOff != 0 {
		t.Fatalf("balancer-off run rebalanced (%d in-run, %d events)", repOff.Rebalanced, eventsOff)
	}
	if eventsOn == 0 {
		t.Fatal("balancer-on run performed no balancing actions on a skewed cluster")
	}
	if repOn.Rebalanced < 0 || int64(repOn.Rebalanced) > eventsOn {
		t.Fatalf("in-run rebalance tally %d outside [0, %d]", repOn.Rebalanced, eventsOn)
	}
	if on >= off {
		t.Fatalf("auto-balance did not reduce the imbalance: off %.2f, on %.2f", off, on)
	}
}

func TestDriverBulkOpsAccounting(t *testing.T) {
	c, _ := driverCluster(t, 20, 0, 11)
	const ops, bulkSize = 1000, 64
	rep := Run(c, Config{
		Clients:     4,
		Ops:         ops,
		PutFraction: 1,
		BulkSize:    bulkSize,
		Seed:        12,
	})
	// Every put roll lands in a batch, and trailing partial batches are
	// flushed on exit, so the reported op count must be (close to) the
	// budget — not the number of flushes.
	if rep.Ops < ops-4*bulkSize || rep.Ops > ops {
		t.Fatalf("ops = %d, want ≈%d (batch flushes must count per key)", rep.Ops, ops)
	}
	flushes := rep.Latency[OpBulkPut].Count()
	if flushes == 0 || int64(flushes) >= rep.Ops {
		t.Fatalf("flushes = %d for %d ops", flushes, rep.Ops)
	}
	if rep.Errors != 0 {
		t.Fatalf("bulk accounting run errored %d times", rep.Errors)
	}
}
