// Package driver is the closed-loop concurrent workload driver for the live
// p2p cluster: N client goroutines issue a configurable read/write/range mix
// (optionally batched through the bulk APIs, optionally under churn) and the
// run is summarised as ops/sec plus latency percentiles via internal/stats.
// It lives in its own package, rather than in internal/workload proper,
// because it drives internal/p2p while the core simulator's tests consume
// internal/workload's generators — folding it into workload would create an
// import cycle in the test build.
package driver

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/p2p"
	"baton/internal/stats"
	"baton/internal/store"
	"baton/internal/workload"
)

// BuildCluster grows a simulated network to the requested size via random
// joins, loads it with uniformly distributed items, and animates it as a
// live cluster — the shared scaffold of the throughput CLI mode, the
// examples and the benchmarks. The returned keys are the inserted ones
// (reads drawn from them hit). The caller owns the cluster and must Stop it.
func BuildCluster(peers, items int, seed int64) (*p2p.Cluster, []keyspace.Key, error) {
	return BuildClusterDist(peers, items, seed, workload.Uniform, 0)
}

// BuildClusterFanout is BuildCluster with a tree fanout: 2 (or 0) grows the
// paper's binary overlay, larger values the BATON* m-ary generalisation with
// routing tables at distances j*m^i. Every workload and churn scenario runs
// unchanged at any fanout; only the overlay's hop counts differ.
func BuildClusterFanout(peers, items int, seed int64, fanout int) (*p2p.Cluster, []keyspace.Key, error) {
	return BuildClusterDistFanout(peers, items, seed, workload.Uniform, 0, fanout)
}

// BuildClusterDist is BuildCluster with a key distribution: the pre-loaded
// items are drawn from dist (workload.Zipf with the given theta skews the
// stored data the way the paper's skew experiments do, concentrating the
// hot ranks in a contiguous region of the key space). The overlay's ranges
// are grown by uniform joins either way, so a skewed load lands on a few
// peers — the configuration the load balancer exists for.
func BuildClusterDist(peers, items int, seed int64, dist workload.Distribution, theta float64) (*p2p.Cluster, []keyspace.Key, error) {
	return BuildClusterDistFanout(peers, items, seed, dist, theta, 0)
}

// BuildClusterDistFanout combines the key-distribution and fanout knobs; it
// is the full-parameter scaffold every other Build variant wraps.
func BuildClusterDistFanout(peers, items int, seed int64, dist workload.Distribution, theta float64, fanout int) (*p2p.Cluster, []keyspace.Key, error) {
	if fanout != 0 && !core.ValidFanout(fanout) {
		return nil, nil, fmt.Errorf("build cluster: invalid fanout %d (want 2..%d)", fanout, core.MaxFanout)
	}
	nw := core.NewNetwork(core.Config{Seed: seed, Fanout: fanout})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < peers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			return nil, nil, fmt.Errorf("grow cluster: %w", err)
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 1, Distribution: dist, ZipfTheta: theta})
	keys := gen.Keys(items)
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			return nil, nil, fmt.Errorf("load cluster: %w", err)
		}
	}
	return p2p.NewCluster(nw), keys, nil
}

// BuildClusterTCP is BuildClusterTCPDistFanout with uniform keys — the
// loopback-wire counterpart of BuildClusterFanout.
func BuildClusterTCP(peers, items int, seed int64, fanout int, listen string) (*p2p.Cluster, func(), []keyspace.Key, error) {
	return BuildClusterTCPDistFanout(peers, items, seed, workload.Uniform, 0, fanout, listen)
}

// BuildClusterTCPDistFanout builds the same overlay as
// BuildClusterDistFanout but animates it as a two-process-shaped pair over
// loopback TCP: a coordinator hosting roughly half the peers listens on the
// given address ("" picks a free loopback port), and a daemon-side cluster
// in the same OS process joins through the wire and hosts the other half —
// so every cross-half message, handoff, replica sync and structural update
// crosses the transport, exactly as it would between cmd/batond processes.
// The returned cluster is the coordinator: every scenario (workload mix,
// churn, kills, audits) drives it unchanged. The returned stop function
// tears down the daemon first, then the coordinator; the caller must call
// it instead of Cluster.Stop.
func BuildClusterTCPDistFanout(peers, items int, seed int64, dist workload.Distribution, theta float64, fanout int, listen string) (*p2p.Cluster, func(), []keyspace.Key, error) {
	if fanout != 0 && !core.ValidFanout(fanout) {
		return nil, nil, nil, fmt.Errorf("build cluster: invalid fanout %d (want 2..%d)", fanout, core.MaxFanout)
	}
	daemonShare := peers / 2
	headPeers := peers - daemonShare
	nw := core.NewNetwork(core.Config{Seed: seed, Fanout: fanout})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < headPeers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			return nil, nil, nil, fmt.Errorf("grow cluster: %w", err)
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 1, Distribution: dist, ZipfTheta: theta})
	keys := gen.Keys(items)
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			return nil, nil, nil, fmt.Errorf("load cluster: %w", err)
		}
	}
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	head, err := p2p.NewClusterListen(nw, listen)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("listen: %w", err)
	}
	if daemonShare == 0 {
		return head, head.Stop, keys, nil
	}
	daemon, err := p2p.JoinRemote(head.Addr(), daemonShare)
	if err != nil {
		head.Stop()
		return nil, nil, nil, fmt.Errorf("join daemon half: %w", err)
	}
	stop := func() {
		daemon.Stop()
		head.Stop()
	}
	return head, stop, keys, nil
}

// AttachCluster joins an existing multi-process overlay (a cmd/batond
// coordinator) at seedAddr as a pure data-plane client and preloads items
// uniformly drawn keys through the wire, so the returned key set behaves
// like BuildCluster's (reads drawn from it hit). Structural operations are
// the coordinator's alone — drive only churn-free workloads through the
// returned cluster. The caller must Stop it.
func AttachCluster(seedAddr string, items int, seed int64) (*p2p.Cluster, []keyspace.Key, error) {
	c, err := p2p.JoinRemote(seedAddr, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("attach to %s: %w", seedAddr, err)
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 1, Distribution: workload.Uniform})
	keys := gen.Keys(items)
	for at := 0; at < len(keys); at += 1024 {
		batch := keys[at:min(at+1024, len(keys))]
		puts := make([]store.Item, len(batch))
		for i, k := range batch {
			puts[i] = store.Item{Key: k, Value: []byte("v")}
		}
		results, err := c.BulkPut(puts)
		if err != nil {
			c.Stop()
			return nil, nil, fmt.Errorf("preload via %s: %w", seedAddr, err)
		}
		for _, r := range results {
			if r.Err != nil {
				c.Stop()
				return nil, nil, fmt.Errorf("preload key %d: %w", r.Key, r.Err)
			}
		}
	}
	return c, keys, nil
}

// Op names the operation kinds the throughput driver issues.
type Op string

// Operations the driver mixes.
const (
	OpGet     Op = "get"
	OpPut     Op = "put"
	OpDelete  Op = "delete"
	OpRange   Op = "range"
	OpBulkPut Op = "bulkput"
)

// Config configures a closed-loop concurrent workload against a live
// p2p.Cluster: Clients goroutines each issue one operation at a time (no
// think time) until Ops operations have completed or Duration has elapsed,
// whichever comes first.
type Config struct {
	// Clients is the number of concurrent client goroutines. Default 8.
	Clients int
	// Ops caps the total number of operations across all clients. Default
	// 10000 when Duration is zero, unlimited otherwise.
	Ops int
	// Duration caps the wall-clock run time. Zero means no time cap.
	Duration time.Duration
	// GetFraction, PutFraction, DeleteFraction and RangeFraction weight the
	// operation mix; they are normalised, and all-zero defaults to
	// 70% get / 20% put / 10% range.
	GetFraction, PutFraction, DeleteFraction, RangeFraction float64
	// RangeSelectivity is the queried fraction of the key domain per range
	// query. Default 0.01.
	RangeSelectivity float64
	// SerialRange walks ranges with the sequential adjacent-chain protocol
	// instead of the parallel fan-out. Equivalent to Plan "serial"; setting
	// both to conflicting values is a Validate error.
	SerialRange bool
	// Plan selects the range execution plan: "serial" (the adjacent-chain
	// walk), "parallel" (the scatter fan-out) or "adaptive" (the query
	// layer's self-tuned planner picks per request from the range's
	// estimated peer-span). Empty defaults to "serial" when SerialRange is
	// set and "parallel" otherwise, matching the pre-planner behaviour.
	Plan string
	// RangeDist shapes the per-query range width around the
	// RangeSelectivity base width: "fixed" (every query uses the base
	// width; the default), "uniform" (widths uniform in [1, 2·base], same
	// mean) or "bimodal" (half the queries very narrow at base/16, half
	// very wide at 16·base — the mixed workload an adaptive planner has to
	// split across plans).
	RangeDist string
	// Route selects how singleton Get/Put/Delete requests are routed: the
	// zero value p2p.RouteOverlay is the paper-faithful per-hop walk,
	// p2p.RouteDirect the one-hop epoch-validated fast path. Run installs
	// the mode on the cluster for the whole run.
	Route p2p.RouteMode
	// BulkSize batches puts through BulkPut in groups of this size when > 1;
	// gets and ranges are unaffected.
	BulkSize int
	// Keys are pre-loaded keys gets and deletes draw from. When empty, gets
	// draw random keys (mostly misses).
	Keys []keyspace.Key
	// KillPeers peers are killed at evenly spaced points of the run to
	// exercise fault-tolerant routing under load. Default 0. Kills are
	// capped so at least one peer always survives: a scheduler that kills
	// the last alive peer degenerates the rest of the run to 100% errors
	// and measures nothing.
	KillPeers int
	// RecoverPeers crash repairs run at evenly spaced points of the run:
	// each one picks a currently dead member and runs Cluster.Recover on it
	// (structural repair plus replica data restoration), so a matched
	// KillPeers/RecoverPeers pair measures availability under a crash-and-
	// repair regime where ErrOwnerDown windows open and close continuously.
	// A recover event with no dead peer to repair is skipped. Default 0.
	RecoverPeers int
	// AutoRecover starts the cluster's background repairer for the run:
	// observed ErrOwnerDown errors queue the dead peer for repair without
	// explicit Recover calls. Useful with KillPeers alone.
	AutoRecover bool
	// JoinPeers new peers join the cluster online at evenly spaced points
	// of the run (full Section III-A membership: locate, range split, data
	// migration). Default 0.
	JoinPeers int
	// DepartPeers peers leave gracefully at evenly spaced points of the run
	// (Section III-B, with full data handoff). Matched JoinPeers and
	// DepartPeers model steady-state churn: the cluster size holds roughly
	// constant while its composition turns over. Default 0.
	DepartPeers int
	// ValueSize is the payload size of writes in bytes. Default 8.
	ValueSize int
	// Distribution selects the key distribution of generated keys (writes,
	// read misses and range-query positions): workload.Uniform (the default)
	// or workload.Zipf, whose hot ranks cluster in a contiguous region of
	// the key space — the paper's skewed workload, which piles both data and
	// traffic onto a few peers.
	Distribution workload.Distribution
	// ZipfTheta is the skew parameter when Distribution is workload.Zipf.
	// Values <= 0 default to 1.0, the paper's setting.
	ZipfTheta float64
	// AutoBalance starts the cluster's background load balancer for the run
	// (p2p.Cluster.StartAutoBalance): hot peers shed load via adjacent
	// shuffles and forced rejoins while the workload executes. The report's
	// Rebalanced counter tallies the actions.
	AutoBalance bool
	// BalanceTheta is the balancer's overload trigger θ when AutoBalance is
	// set. Values <= 1 default to 2.
	BalanceTheta float64
	// TraceSample samples 1 in N requests for hop-level tracing (the
	// cluster's flight recorder); 0 — the default — turns sampling off,
	// which is free on the request path. Run installs the rate on the
	// cluster for the whole run.
	TraceSample int
	// Seed seeds the deterministic per-client random sources.
	Seed int64
}

// Range plan names accepted by Config.Plan.
const (
	PlanSerial   = "serial"
	PlanParallel = "parallel"
	PlanAdaptive = "adaptive"
)

// Range width distributions accepted by Config.RangeDist.
const (
	RangeDistFixed   = "fixed"
	RangeDistUniform = "uniform"
	RangeDistBimodal = "bimodal"
)

// Validate rejects a Config whose plan or range-distribution knobs are
// inconsistent: an unknown Plan or RangeDist name, or a Plan that
// contradicts the legacy SerialRange flag. Run assumes a valid Config;
// cmd/batonsim turns a Validate error into a usage failure.
func (cfg Config) Validate() error {
	switch cfg.Plan {
	case "", PlanSerial, PlanParallel, PlanAdaptive:
	default:
		return fmt.Errorf("driver: unknown plan %q (want %s, %s or %s)",
			cfg.Plan, PlanSerial, PlanParallel, PlanAdaptive)
	}
	if cfg.SerialRange && cfg.Plan != "" && cfg.Plan != PlanSerial {
		return fmt.Errorf("driver: SerialRange conflicts with plan %q", cfg.Plan)
	}
	switch cfg.RangeDist {
	case "", RangeDistFixed, RangeDistUniform, RangeDistBimodal:
	default:
		return fmt.Errorf("driver: unknown range distribution %q (want %s, %s or %s)",
			cfg.RangeDist, RangeDistFixed, RangeDistUniform, RangeDistBimodal)
	}
	return nil
}

// planOf resolves the effective range plan, folding the legacy SerialRange
// flag into the Plan namespace.
func (cfg Config) planOf() string {
	if cfg.Plan != "" {
		return cfg.Plan
	}
	if cfg.SerialRange {
		return PlanSerial
	}
	return PlanParallel
}

// Report summarises one driver run: counts, wall-clock throughput and
// per-operation latency percentiles (microseconds).
type Report struct {
	Clients  int
	Ops      int64
	Errors   int64
	NotFound int64
	// Killed, Joined, Departed and Recovered count the churn events that
	// actually executed: abrupt kills, online joins, graceful departures
	// and crash repairs. Rebalanced counts the background balancer's
	// actions (adjacent shuffles and forced rejoins) during the run.
	Killed     int
	Joined     int
	Departed   int
	Recovered  int
	Rebalanced int
	Elapsed    time.Duration
	OpsPerSec  float64
	// Latency maps an operation kind (plus "all") to its recorded latency
	// samples in microseconds.
	Latency map[Op]*stats.Latency
	// HopsP50 and HopsP99 are percentiles of the per-operation message hop
	// counts (every routed op reports its hops; the driver histograms them).
	HopsP50, HopsP99 float64
	// QueueWaitP50us and QueueWaitP99us are percentiles of the per-hop
	// queue wait — how long messages sat in peer inboxes before being
	// served — over this run only (the cluster registry's delta),
	// in microseconds.
	QueueWaitP50us, QueueWaitP99us float64
	// PlanSerial, PlanParallel and PlanCacheHits are the query layer's
	// planning counters over this run only (the cluster's PlanStats delta):
	// adaptive-path range queries dispatched serially and in parallel, and
	// plan-cache hits. All zero unless the run used Plan "adaptive".
	PlanSerial, PlanParallel, PlanCacheHits int64
}

// OpAll indexes the aggregate latency distribution in Report.Latency.
const OpAll Op = "all"

// String renders the report as an aligned table of throughput and latency
// percentiles, the format cmd/batonsim prints in throughput mode.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clients %d  ops %d  errors %d  notfound %d  churn killed/joined/departed/recovered %d/%d/%d/%d  rebalanced %d\n",
		r.Clients, r.Ops, r.Errors, r.NotFound, r.Killed, r.Joined, r.Departed, r.Recovered, r.Rebalanced)
	fmt.Fprintf(&b, "elapsed %v  throughput %.0f ops/sec\n", r.Elapsed.Round(time.Millisecond), r.OpsPerSec)
	fmt.Fprintf(&b, "hops p50/p99 %.0f/%.0f  queue wait p50/p99 %.1f/%.1f µs\n",
		r.HopsP50, r.HopsP99, r.QueueWaitP50us, r.QueueWaitP99us)
	if r.PlanSerial+r.PlanParallel > 0 {
		fmt.Fprintf(&b, "plans serial/parallel %d/%d  plan cache hits %d\n",
			r.PlanSerial, r.PlanParallel, r.PlanCacheHits)
	}
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %10s %10s\n", "op", "count", "mean µs", "p50 µs", "p95 µs", "p99 µs", "max µs")
	ops := make([]string, 0, len(r.Latency))
	for op := range r.Latency {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	for _, op := range ops {
		l := r.Latency[Op(op)]
		if l.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10d %10.0f %10.0f %10.0f %10.0f %10.0f\n",
			op, l.Count(), l.Mean(), l.Percentile(0.50), l.Percentile(0.95), l.Percentile(0.99), l.Max())
	}
	return b.String()
}

// Run executes the configured closed-loop workload against the
// cluster and returns the aggregated report. Routing errors (ErrOwnerDown,
// ErrUnreachable) are counted, not fatal: under churn they are the expected
// behaviour. The driver never blocks indefinitely — that is the cluster's
// concurrency contract, and the driver is also its continuous test.
func Run(c *p2p.Cluster, cfg Config) Report {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Ops <= 0 && cfg.Duration == 0 {
		cfg.Ops = 10_000
	}
	if cfg.GetFraction == 0 && cfg.PutFraction == 0 && cfg.DeleteFraction == 0 && cfg.RangeFraction == 0 {
		cfg.GetFraction, cfg.PutFraction, cfg.RangeFraction = 0.7, 0.2, 0.1
	}
	if cfg.RangeSelectivity <= 0 {
		cfg.RangeSelectivity = 0.01
	}
	if cfg.RangeSelectivity > 1 {
		cfg.RangeSelectivity = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 8
	}
	if cfg.Distribution == "" {
		cfg.Distribution = workload.Uniform
	}
	c.SetRouteMode(cfg.Route)
	c.SetTraceSampling(cfg.TraceSample)
	queueWaitBefore := c.Metrics().QueueWait
	balanceEventsBefore := c.BalanceEvents()
	if cfg.AutoBalance {
		c.StartAutoBalance(p2p.AutoBalanceConfig{Theta: cfg.BalanceTheta})
	}
	total := cfg.GetFraction + cfg.PutFraction + cfg.DeleteFraction + cfg.RangeFraction
	getCut := cfg.GetFraction / total
	putCut := getCut + cfg.PutFraction/total
	delCut := putCut + cfg.DeleteFraction/total

	// Membership changes while the run executes, so the peer-ID view is an
	// atomically swapped snapshot, refreshed by the churn scheduler.
	var idsPtr atomic.Pointer[[]core.PeerID]
	refreshIDs := func() { ids := c.PeerIDs(); idsPtr.Store(&ids) }
	refreshIDs()
	value := make([]byte, cfg.ValueSize)
	domain := keyspace.FullDomain()
	width := int64(float64(domain.Size()) * cfg.RangeSelectivity)
	if width < 1 {
		width = 1
	}
	// widthFor draws one query's range width around the base width
	// according to the configured distribution; each client passes its own
	// deterministic source.
	clampWidth := func(w int64) int64 {
		if w < 1 {
			return 1
		}
		if max := domain.Size(); w > max {
			return max
		}
		return w
	}
	widthFor := func(rng *rand.Rand) int64 {
		switch cfg.RangeDist {
		case RangeDistUniform:
			return clampWidth(1 + rng.Int63n(2*width))
		case RangeDistBimodal:
			if rng.Intn(2) == 0 {
				return clampWidth(width / 16)
			}
			return clampWidth(width * 16)
		default: // "" or RangeDistFixed
			return width
		}
	}
	plan := cfg.planOf()
	plansBefore := c.PlanStats()

	report := Report{
		Clients: cfg.Clients,
		Latency: map[Op]*stats.Latency{
			OpGet: {}, OpPut: {}, OpDelete: {}, OpRange: {}, OpBulkPut: {}, OpAll: {},
		},
	}
	// opsDone hands out the operation budget (one increment per roll, so a
	// batched put consumes budget per key); unitsDone counts the logical key
	// operations actually completed, which is what the report's throughput
	// is computed from — a flushed BulkPut of k keys counts k, not 1.
	var opsDone, unitsDone, errCount, notFound atomic.Int64
	var deadline time.Time
	start := time.Now()
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	stopping := func(n int64) bool {
		if cfg.Ops > 0 && n > int64(cfg.Ops) {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	// Churn: kill, join and depart events at evenly spaced points of the
	// run — by operation count when an op budget is set, by elapsed time in
	// Duration-only runs — so membership changes land mid-traffic rather
	// than before or after it. The event kinds are shuffled together
	// deterministically, so matched join/depart counts interleave instead
	// of draining the cluster and then refilling it.
	type churnKind int
	const (
		churnKill churnKind = iota
		churnJoin
		churnDepart
		churnRecover
	)
	if cfg.AutoRecover {
		c.StartAutoRecover()
	}
	churnRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	var events []churnKind
	for i := 0; i < cfg.KillPeers; i++ {
		events = append(events, churnKill)
	}
	for i := 0; i < cfg.JoinPeers; i++ {
		events = append(events, churnJoin)
	}
	for i := 0; i < cfg.DepartPeers; i++ {
		events = append(events, churnDepart)
	}
	churnRng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
	// Recover events are interleaved after the shuffle so that, with
	// matched counts, each repair tends to follow the crash that warranted
	// it instead of firing first and finding nothing dead.
	if cfg.RecoverPeers > 0 && len(events) > 0 {
		mixed := make([]churnKind, 0, len(events)+cfg.RecoverPeers)
		per := float64(cfg.RecoverPeers) / float64(len(events))
		acc := 0.0
		for _, ev := range events {
			mixed = append(mixed, ev)
			for acc += per; acc >= 1; acc-- {
				mixed = append(mixed, churnRecover)
			}
		}
		for len(mixed) < len(events)+cfg.RecoverPeers {
			mixed = append(mixed, churnRecover)
		}
		events = mixed
	} else {
		for i := 0; i < cfg.RecoverPeers; i++ {
			events = append(events, churnRecover)
		}
	}
	var fired atomic.Int64 // events attempted (scheduler progress)
	var killed, joined, departed, recovered atomic.Int64
	eventsDue := func(n int64) int64 {
		if len(events) == 0 {
			return 0
		}
		// The run ends at whichever cap is hit first, so pace the events by
		// whichever fraction is further along.
		var frac float64
		if cfg.Ops > 0 {
			frac = float64(n) / float64(cfg.Ops)
		}
		if cfg.Duration > 0 {
			if tf := float64(time.Since(start)) / float64(cfg.Duration); tf > frac {
				frac = tf
			}
		}
		due := int64(frac * float64(len(events)+1))
		if due > int64(len(events)) {
			due = int64(len(events))
		}
		return due
	}
	// aliveMembers counts live members; kills and departures are capped so
	// at least one peer always survives to serve (and departures also need
	// a second peer to absorb the data).
	aliveMembers := func() int {
		n := 0
		for _, id := range *idsPtr.Load() {
			if c.Alive(id) {
				n++
			}
		}
		return n
	}
	randAlive := func() (core.PeerID, bool) {
		ids := *idsPtr.Load()
		for tries := 0; tries < 20; tries++ {
			id := ids[churnRng.Intn(len(ids))]
			if c.Alive(id) {
				return id, true
			}
		}
		return 0, false
	}
	var churnMu sync.Mutex
	maybeChurn := func(n int64) {
		if fired.Load() >= eventsDue(n) {
			return
		}
		churnMu.Lock()
		defer churnMu.Unlock()
		for fired.Load() < eventsDue(n) {
			ev := events[fired.Load()]
			fired.Add(1)
			switch ev {
			case churnKill:
				if aliveMembers() <= 1 {
					continue // never kill the last survivor
				}
				if id, ok := randAlive(); ok && c.Kill(id) == nil {
					killed.Add(1)
				}
			case churnJoin:
				if id, ok := randAlive(); ok {
					if _, err := c.Join(id); err == nil {
						joined.Add(1)
						refreshIDs()
					}
				}
			case churnDepart:
				if aliveMembers() <= 1 {
					continue // the last survivor must keep serving
				}
				if id, ok := randAlive(); ok {
					if err := c.Depart(id); err == nil {
						departed.Add(1)
						refreshIDs()
					}
				}
			case churnRecover:
				for _, id := range *idsPtr.Load() {
					if c.Alive(id) {
						continue
					}
					if _, err := c.Recover(id); err == nil || errors.Is(err, p2p.ErrReplicaLost) {
						recovered.Add(1)
						refreshIDs()
					}
					break // one repair per event, like the other kinds
				}
			}
		}
	}

	// hopsHist histograms every routed op's message hop count (exact buckets
	// below 128, so routed hop counts lose no precision).
	var hopsHist obs.Histogram
	record := func(op Op, units int, d time.Duration, err error, found bool, hops int) {
		us := float64(d.Microseconds())
		report.Latency[op].Add(us)
		report.Latency[OpAll].Add(us)
		unitsDone.Add(int64(units))
		if err != nil {
			errCount.Add(1)
		} else {
			hopsHist.Observe(int64(hops))
			if !found {
				notFound.Add(1)
			}
		}
	}

	var wg sync.WaitGroup
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cl)*7919))
			// Every freshly generated key — writes, read misses, range-query
			// positions — comes from the configured distribution; under
			// workload.Zipf the stream hammers the hot region.
			gen := workload.NewGenerator(workload.Config{
				Distribution: cfg.Distribution,
				ZipfTheta:    cfg.ZipfTheta,
				Seed:         cfg.Seed + int64(cl)*104729,
			})
			randKey := func() keyspace.Key {
				if len(cfg.Keys) > 0 && rng.Float64() < 0.9 {
					return cfg.Keys[rng.Intn(len(cfg.Keys))]
				}
				return gen.NextKey()
			}
			liveVia := func() (core.PeerID, bool) {
				ids := *idsPtr.Load()
				for tries := 0; tries < 16; tries++ {
					id := ids[rng.Intn(len(ids))]
					if c.Alive(id) {
						return id, true
					}
				}
				return 0, false
			}
			var bulk []store.Item
			flushBulk := func() {
				if len(bulk) == 0 {
					return
				}
				t0 := time.Now()
				res, err := c.BulkPut(bulk)
				us := float64(time.Since(t0).Microseconds())
				report.Latency[OpBulkPut].Add(us)
				report.Latency[OpAll].Add(us)
				unitsDone.Add(int64(len(bulk)))
				if err != nil {
					// Whole-call failure: every key in the batch failed.
					errCount.Add(int64(len(bulk)))
				} else {
					// Count failures per key so Errors stays comparable with
					// the singleton-put mode.
					for _, r := range res {
						if r.Err != nil {
							errCount.Add(1)
						}
					}
				}
				bulk = bulk[:0]
			}
			defer flushBulk() // don't silently drop a trailing partial batch
			for {
				n := opsDone.Add(1)
				if stopping(n) {
					return
				}
				maybeChurn(n)
				via, ok := liveVia()
				if !ok {
					return
				}
				roll := rng.Float64()
				switch {
				case roll < getCut:
					t0 := time.Now()
					_, found, hops, err := c.Get(via, randKey())
					record(OpGet, 1, time.Since(t0), err, found, hops)
				case roll < putCut:
					k := gen.NextKey()
					if cfg.BulkSize > 1 {
						// Batch appends are free; flushBulk stamps its own
						// timer around the actual BulkPut.
						bulk = append(bulk, store.Item{Key: k, Value: value})
						if len(bulk) >= cfg.BulkSize {
							flushBulk()
						}
					} else {
						t0 := time.Now()
						hops, err := c.Put(via, k, value)
						record(OpPut, 1, time.Since(t0), err, true, hops)
					}
				case roll < delCut:
					t0 := time.Now()
					found, hops, err := c.Delete(via, randKey())
					record(OpDelete, 1, time.Since(t0), err, found, hops)
				default:
					// Range queries positioned by the distribution too, so a
					// skewed run scans the hot region as often as it reads it.
					w := widthFor(rng)
					lo := gen.NextKey()
					if ceil := domain.Upper - keyspace.Key(w); lo > ceil {
						lo = ceil
					}
					if lo < domain.Lower {
						lo = domain.Lower
					}
					r := keyspace.NewRange(lo, lo+keyspace.Key(w))
					var err error
					var hops int
					t0 := time.Now()
					switch plan {
					case PlanSerial:
						_, hops, err = c.RangeSerial(via, r)
					case PlanAdaptive:
						_, hops, err = c.RangeAdaptive(via, r)
					default:
						_, hops, err = c.Range(via, r)
					}
					record(OpRange, 1, time.Since(t0), err, true, hops)
				}
			}
		}(cl)
	}
	wg.Wait()

	report.Elapsed = time.Since(start)
	report.Ops = unitsDone.Load()
	report.Errors = errCount.Load()
	report.NotFound = notFound.Load()
	report.Killed = int(killed.Load())
	report.Joined = int(joined.Load())
	report.Departed = int(departed.Load())
	report.Recovered = int(recovered.Load())
	report.Rebalanced = int(c.BalanceEvents() - balanceEventsBefore)
	if secs := report.Elapsed.Seconds(); secs > 0 {
		report.OpsPerSec = float64(report.Ops) / secs
	}
	hops := hopsHist.Snapshot()
	report.HopsP50 = float64(hops.Percentile(50))
	report.HopsP99 = float64(hops.Percentile(99))
	queueWait := c.Metrics().QueueWait.Sub(queueWaitBefore)
	report.QueueWaitP50us = float64(queueWait.Percentile(50)) / 1e3
	report.QueueWaitP99us = float64(queueWait.Percentile(99)) / 1e3
	plans := c.PlanStats()
	report.PlanSerial = plans.Serial - plansBefore.Serial
	report.PlanParallel = plans.Parallel - plansBefore.Parallel
	report.PlanCacheHits = plans.CacheHits - plansBefore.CacheHits
	return report
}
