package workload

import (
	"math"
	"testing"

	"baton/internal/keyspace"
)

func TestUniformGeneratorInDomain(t *testing.T) {
	g := NewGenerator(Config{Seed: 1})
	if g.Domain() != keyspace.FullDomain() {
		t.Fatalf("default domain = %v", g.Domain())
	}
	for i := 0; i < 10000; i++ {
		k := g.NextKey()
		if !g.Domain().Contains(k) {
			t.Fatalf("key %d outside domain", k)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 42})
	b := NewGenerator(Config{Seed: 42})
	for i := 0; i < 100; i++ {
		if a.NextKey() != b.NextKey() {
			t.Fatal("same seed should produce same sequence")
		}
	}
	c := NewGenerator(Config{Seed: 43})
	same := true
	a2 := NewGenerator(Config{Seed: 42})
	for i := 0; i < 100; i++ {
		if a2.NextKey() != c.NextKey() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should produce different sequences")
	}
}

func TestUniformSpread(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, Domain: keyspace.NewRange(0, 1000)})
	buckets := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		k := g.NextKey()
		buckets[int(k)/100]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("uniform bucket %d has fraction %f, want ~0.1", i, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	dom := keyspace.NewRange(0, 1_000_000)
	g := NewGenerator(Config{Seed: 5, Distribution: Zipf, ZipfTheta: 1.0, ZipfRanks: 1000, Domain: dom})
	const n = 50000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		k := g.NextKey()
		if !dom.Contains(k) {
			t.Fatalf("zipf key %d outside domain", k)
		}
		buckets[int(k)/100000]++
	}
	// Zipf(1.0) over ranks mapped monotonically to the domain: the first
	// bucket must receive far more keys than the last.
	if buckets[0] < 5*buckets[9]+1 {
		t.Fatalf("zipf distribution not skewed: first bucket %d, last bucket %d", buckets[0], buckets[9])
	}
	// And the total mass in the first two buckets should be a majority.
	if buckets[0]+buckets[1] < n/2 {
		t.Fatalf("zipf head too light: %d of %d", buckets[0]+buckets[1], n)
	}
}

func TestZipfDefaults(t *testing.T) {
	g := NewGenerator(Config{Distribution: Zipf, Seed: 1})
	if g.zipf == nil {
		t.Fatal("zipf sampler not initialised")
	}
	if g.zipf.n != 100_000 {
		t.Fatalf("default ranks = %d", g.zipf.n)
	}
	for i := 0; i < 1000; i++ {
		if !g.Domain().Contains(g.NextKey()) {
			t.Fatal("key outside domain")
		}
	}
}

func TestKeysBatch(t *testing.T) {
	g := NewGenerator(Config{Seed: 9})
	ks := g.Keys(257)
	if len(ks) != 257 {
		t.Fatalf("Keys returned %d keys", len(ks))
	}
}

func TestExactQueryHitRate(t *testing.T) {
	g := NewGenerator(Config{Seed: 11, Domain: keyspace.NewRange(0, 1<<40)})
	existing := []keyspace.Key{1, 2, 3, 4, 5}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		q := g.ExactQuery(existing, 0.8)
		if q <= 5 {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("hit rate = %f, want ~0.8", frac)
	}
	// With no existing keys, queries always come from the distribution.
	q := g.ExactQuery(nil, 1.0)
	if !g.Domain().Contains(q) {
		t.Fatal("query outside domain")
	}
}

func TestRangeQuery(t *testing.T) {
	dom := keyspace.NewRange(0, 1_000_000)
	g := NewGenerator(Config{Seed: 13, Domain: dom})
	for i := 0; i < 1000; i++ {
		r := g.RangeQuery(0.01)
		if r.IsEmpty() {
			t.Fatal("range query empty")
		}
		if !dom.ContainsRange(r) {
			t.Fatalf("range query %v escapes domain", r)
		}
		if r.Size() != 10000 {
			t.Fatalf("range width = %d, want 10000", r.Size())
		}
	}
	// Degenerate selectivities are clamped.
	if r := g.RangeQuery(0); r.Size() < 1 {
		t.Fatal("zero selectivity should still produce a non-empty range")
	}
	if r := g.RangeQuery(5); r.Size() != dom.Size() {
		t.Fatalf("selectivity > 1 should cover the domain, got %v", r)
	}
}

func TestZipfSamplerDistribution(t *testing.T) {
	z := newZipfSampler(1.0, 100)
	rng := NewGenerator(Config{Seed: 17}).rng
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.sample(rng)]++
	}
	// Rank 0 should be roughly theta-proportionally more frequent than rank 9:
	// p(0)/p(9) = 10 for theta=1.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("zipf rank ratio = %f, want ~10", ratio)
	}
}

func TestChurnSequence(t *testing.T) {
	cfg := ChurnConfig{Events: 1000, JoinFraction: 0.6, FailFraction: 0.5, Seed: 21}
	events := ChurnSequence(cfg)
	if len(events) != 1000 {
		t.Fatalf("generated %d events", len(events))
	}
	joins, leaves, fails := 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EventJoin:
			joins++
		case EventLeave:
			leaves++
		case EventFail:
			fails++
		}
	}
	if math.Abs(float64(joins)/1000-0.6) > 0.06 {
		t.Fatalf("join fraction = %d/1000, want ~0.6", joins)
	}
	if leaves == 0 || fails == 0 {
		t.Fatalf("expected both leaves (%d) and failures (%d)", leaves, fails)
	}
	// Deterministic for the same seed.
	again := ChurnSequence(cfg)
	for i := range events {
		if events[i] != again[i] {
			t.Fatal("churn sequence not deterministic")
		}
	}
}

func TestChurnEventKindString(t *testing.T) {
	if EventJoin.String() != "join" || EventLeave.String() != "leave" || EventFail.String() != "fail" {
		t.Fatal("ChurnEventKind names wrong")
	}
	if ChurnEventKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
