// Quickstart: build a BATON overlay, store some data and query it.
//
// This example grows a 200-peer network through random joins (exactly how
// peers would discover the network in practice: each new peer contacts any
// peer it already knows), inserts a handful of keys, and then issues exact
// and range queries from random peers, printing the number of messages each
// operation needed — the metric the paper's evaluation is built on.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"baton"
)

func main() {
	nw := baton.NewNetwork(baton.Config{Seed: 2026})

	// Grow the network: every join is routed by Algorithm 1 of the paper to
	// a peer that may accept a child without unbalancing the tree.
	for nw.Size() < 200 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			log.Fatalf("join: %v", err)
		}
	}
	fmt.Printf("network: %d peers, tree height %d (1.44*log2(200) ≈ 11)\n", nw.Size(), nw.Height())

	// Store a few key/value pairs. Each insert is routed to the peer whose
	// range contains the key.
	type entry struct {
		key   baton.Key
		value string
	}
	entries := []entry{
		{42, "answer"},
		{1_000_000, "a million"},
		{250_000_000, "a quarter of the domain"},
		{999_999_998, "near the top"},
	}
	for _, e := range entries {
		cost, err := nw.Insert(nw.RandomPeer(), e.key, []byte(e.value))
		if err != nil {
			log.Fatalf("insert %d: %v", e.key, err)
		}
		fmt.Printf("insert %-12d -> %2d messages\n", e.key, cost.Messages)
	}

	// Exact-match queries from random peers: O(log N) messages each.
	for _, e := range entries {
		value, found, cost, err := nw.SearchExact(nw.RandomPeer(), e.key)
		if err != nil || !found {
			log.Fatalf("search %d: found=%v err=%v", e.key, found, err)
		}
		fmt.Printf("search %-12d -> %q in %2d messages\n", e.key, value, cost.Messages)
	}

	// A range query: routed to the first intersecting peer, then along the
	// adjacent links — something a plain DHT cannot do.
	res, cost, err := nw.SearchRange(nw.RandomPeer(), baton.NewRange(1, 2_000_000))
	if err != nil {
		log.Fatalf("range query: %v", err)
	}
	fmt.Printf("range [1, 2000000) -> %d items from %d peers in %d messages\n",
		len(res.Items), len(res.Peers), cost.Messages)

	// Peers can leave at any time; the overlay re-balances itself.
	for i := 0; i < 50; i++ {
		if _, err := nw.Leave(nw.RandomPeer()); err != nil {
			log.Fatalf("leave: %v", err)
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		log.Fatalf("invariants violated after churn: %v", err)
	}
	fmt.Printf("after 50 departures: %d peers, height %d, data still reachable:\n", nw.Size(), nw.Height())
	for _, e := range entries {
		_, found, _, err := nw.SearchExact(nw.RandomPeer(), e.key)
		fmt.Printf("  key %-12d found=%v err=%v\n", e.key, found, err)
	}
	fmt.Printf("total protocol messages exchanged: %d\n", nw.Metrics().TotalMessages())
}
