// Throughput: drive the live cluster as a concurrent key-value service.
//
// This example builds a 256-peer overlay, animates it, and then runs three
// workloads back to back:
//
//  1. a closed-loop mixed workload (32 clients, 70% get / 20% put / 10%
//     range) reporting ops/sec and latency percentiles,
//  2. the same workload with peers being killed mid-run, showing that
//     throughput degrades gracefully instead of hanging, and
//  3. a head-to-head of the two range-query modes: the paper's sequential
//     adjacent-chain walk against the parallel fan-out.
//
// Run with:
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"baton/internal/stats"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

func main() {
	cluster, keys, err := driver.BuildCluster(256, 20_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	fmt.Printf("live cluster: %d peers, %d items\n\n", cluster.Size(), len(keys))

	fmt.Println("— mixed workload, healthy cluster —")
	rep := driver.Run(cluster, driver.Config{
		Clients:          32,
		Ops:              20_000,
		GetFraction:      0.7,
		PutFraction:      0.2,
		RangeFraction:    0.1,
		RangeSelectivity: 0.01,
		Keys:             keys,
		Seed:             9,
	})
	fmt.Print(rep.String())

	fmt.Println("\n— same workload while 20 peers are killed mid-run —")
	rep = driver.Run(cluster, driver.Config{
		Clients:          32,
		Ops:              20_000,
		GetFraction:      0.7,
		PutFraction:      0.2,
		RangeFraction:    0.1,
		RangeSelectivity: 0.01,
		Keys:             keys,
		KillPeers:        20,
		Seed:             10,
	})
	fmt.Print(rep.String())

	fmt.Println("\n— range fan-out vs sequential chain walk —")
	ids := cluster.PeerIDs()
	gen := workload.NewGenerator(workload.Config{Seed: 8})
	rng := rand.New(rand.NewSource(11))
	var serial, parallel stats.Latency
	for i := 0; i < 100; i++ {
		r := gen.RangeQuery(0.15) // ~38 of the 256 peers per query
		via := ids[rng.Intn(len(ids))]
		t0 := time.Now()
		if _, _, err := cluster.RangeSerial(via, r); err == nil {
			serial.Add(float64(time.Since(t0).Microseconds()))
		}
		t0 = time.Now()
		if _, _, err := cluster.Range(via, r); err == nil {
			parallel.Add(float64(time.Since(t0).Microseconds()))
		}
	}
	fmt.Printf("serial chain walk : mean %6.0f µs   p99 %6.0f µs\n", serial.Mean(), serial.Percentile(0.99))
	fmt.Printf("parallel fan-out  : mean %6.0f µs   p99 %6.0f µs\n", parallel.Mean(), parallel.Percentile(0.99))
	if m := parallel.Mean(); m > 0 {
		fmt.Printf("speedup: %.2fx\n", serial.Mean()/m)
	}
}
