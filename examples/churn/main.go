// Churn and fault tolerance: peers keep joining, leaving and failing while
// the overlay continues to answer queries.
//
// The paper's fault-tolerance argument (Section III-D) is that the sideways
// routing tables provide many alternative paths, so the failure of a peer —
// or of many peers at once — does not disconnect the tree: requests route
// around the failed peers until their parents repair the damage. This example
// subjects a network to a churn sequence (joins, graceful leaves and abrupt
// failures), measures query success and cost throughout, and repairs the
// failures at the end.
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"baton"
	"baton/internal/workload"
)

func main() {
	nw := baton.NewNetwork(baton.Config{Seed: 3})
	for nw.Size() < 250 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			log.Fatalf("join: %v", err)
		}
	}

	// Store data so queries have something to find.
	gen := workload.NewGenerator(workload.Config{Seed: 5})
	keys := gen.Keys(5_000)
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	fmt.Printf("initial network: %d peers, %d items\n", nw.Size(), nw.TotalItems())

	// Generate a churn sequence: 40% joins, 60% departures, a third of which
	// are abrupt failures.
	events := workload.ChurnSequence(workload.ChurnConfig{
		Events:       150,
		JoinFraction: 0.4,
		FailFraction: 0.33,
		Seed:         9,
	})
	rng := rand.New(rand.NewSource(13))
	joins, leaves, failures := 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case workload.EventJoin:
			if _, _, err := nw.Join(randomLivePeer(nw, rng)); err != nil {
				log.Fatalf("churn join: %v", err)
			}
			joins++
		case workload.EventLeave:
			if _, err := nw.Leave(randomLivePeer(nw, rng)); err != nil {
				log.Fatalf("churn leave: %v", err)
			}
			leaves++
		case workload.EventFail:
			if err := nw.Fail(randomLivePeer(nw, rng)); err != nil {
				log.Fatalf("churn fail: %v", err)
			}
			failures++
		}
	}
	fmt.Printf("applied churn: %d joins, %d graceful leaves, %d failures (still unrepaired)\n",
		joins, leaves, failures)

	// Query while the failed peers are still down: routing goes around them.
	found, totalMsgs, extra := 0, 0, 0
	const queries = 500
	for i := 0; i < queries; i++ {
		k := keys[rng.Intn(len(keys))]
		_, ok, cost, err := nw.SearchExact(randomLivePeer(nw, rng), k)
		if err != nil {
			log.Fatalf("query during failures: %v", err)
		}
		if ok {
			found++
		}
		totalMsgs += cost.Messages
		extra += cost.ExtraMessages
	}
	fmt.Printf("during failures: %d/%d queries answered, avg %.1f messages (%.2f redirects) per query\n",
		found, queries, float64(totalMsgs)/queries, float64(extra)/queries)

	// Repair every failure: the parents regenerate the lost routing state and
	// drive graceful departures on behalf of the failed peers.
	for _, id := range nw.FailedPeers() {
		if _, err := nw.RepairFailure(id); err != nil {
			log.Fatalf("repair: %v", err)
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		log.Fatalf("invariants violated after repair: %v", err)
	}
	fmt.Printf("after repair: %d peers, invariants hold, height %d\n", nw.Size(), nw.Height())
}

// randomLivePeer returns a peer that is up (Fail leaves peers in the
// registry until they are repaired).
func randomLivePeer(nw *baton.Network, rng *rand.Rand) baton.PeerID {
	for {
		id := nw.RandomPeer()
		info, err := nw.Peer(id)
		if err == nil && info.Alive {
			return id
		}
		_ = rng
	}
}
