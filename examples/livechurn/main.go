// Live churn: grow and shrink the running cluster online — full Section
// III-A joins and Section III-B graceful departures with data migration —
// while concurrent clients keep reading and writing, then audit the
// quiesced structure against the simulator's invariant suite.
//
// The walkthrough has three acts:
//
//  1. Explicit membership: join a handful of peers one at a time, watch the
//     cluster grow, then depart them again and check that every previously
//     acknowledged write is still readable (the handoffs moved the data).
//  2. Load balancing: skew one peer with a burst of writes and trigger the
//     adjacent-peer shuffle of Section V.
//  3. Steady-state churn under load: the workload driver serves a mixed
//     read/write/range workload while matched join/depart rates turn the
//     membership over; the size stays put while the composition changes.
//
// Run with:
//
//	go run ./examples/livechurn
package main

import (
	"fmt"
	"log"

	"baton"
	"baton/internal/workload/driver"
)

func main() {
	// Build and load a 64-peer overlay with the simulator, then animate it.
	cluster, keys, err := driver.BuildCluster(64, 10_000, 7)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	defer cluster.Stop()
	fmt.Printf("live cluster: %d peer goroutines, %d items\n\n", cluster.Size(), len(keys))

	// --- Act 1: explicit joins and departures -----------------------------
	via := cluster.PeerIDs()[0]
	var joined []baton.PeerID
	for i := 0; i < 8; i++ {
		id, err := cluster.Join(via)
		if err != nil {
			log.Fatalf("join: %v", err)
		}
		joined = append(joined, id)
	}
	fmt.Printf("after 8 online joins: %d peers\n", cluster.Size())
	for _, id := range joined[:4] {
		if err := cluster.Depart(id); err != nil {
			log.Fatalf("depart %d: %v", id, err)
		}
	}
	fmt.Printf("after 4 graceful departures: %d peers\n", cluster.Size())
	missing := 0
	for _, k := range keys {
		if _, found, _, err := cluster.Get(via, k); err != nil || !found {
			missing++
		}
	}
	fmt.Printf("pre-loaded keys still readable: %d/%d\n\n", len(keys)-missing, len(keys))

	// --- Act 2: the adjacent-peer load-balance shuffle --------------------
	snaps, err := cluster.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	hot := snaps[len(snaps)/2]
	span := hot.Range.Size()
	for i := int64(0); i < 500; i++ {
		k := hot.Range.Lower + baton.Key(i*span/500)
		if _, err := cluster.Put(hot.ID, k, []byte("hot")); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	moved, err := cluster.LoadBalance(hot.ID)
	if err != nil {
		log.Fatalf("load balance: %v", err)
	}
	fmt.Printf("overloaded peer %d shuffled %d items to its lighter adjacent peer\n\n", hot.ID, moved)

	// --- Act 3: steady-state churn under load -----------------------------
	before := cluster.Size()
	rep := driver.Run(cluster, driver.Config{
		Clients:       16,
		Ops:           20_000,
		GetFraction:   0.6,
		PutFraction:   0.25,
		RangeFraction: 0.15,
		Keys:          keys,
		JoinPeers:     16,
		DepartPeers:   16,
		Seed:          11,
	})
	fmt.Println("steady-state churn under a mixed workload:")
	fmt.Print(rep.String())
	fmt.Printf("cluster size: %d -> %d (matched join/depart rates)\n\n", before, cluster.Size())

	// --- The audit: quiesce, snapshot, re-verify every invariant ----------
	snaps, err = cluster.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	if err := baton.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		log.Fatalf("structural invariants violated after churn: %v", err)
	}
	items := 0
	for _, ps := range snaps {
		items += len(ps.Items)
	}
	fmt.Printf("post-quiesce audit: %d peers, %d items, balanced tree, gap-free ranges, symmetric routing tables — all invariants OK\n", len(snaps), items)
}
