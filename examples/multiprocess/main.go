// Multi-process overlay: the cluster spanning OS-process boundaries over
// the TCP wire transport (internal/transport), compressed into a single
// runnable program.
//
// Everything built on the in-process cluster — routing, replication,
// recovery, parallel ranges, bulk operations — works unchanged when peers
// live in different processes: the coordinator (p2p.NewClusterListen) owns
// the topology and listens on a real socket; daemons (p2p.JoinRemote) dial
// it, join the overlay, and host their share of the keyspace; every
// message that crosses a process boundary travels the length-prefixed
// binary wire codec, and every reply finds its way home through the
// correlation table instead of a channel.
//
// This example runs the three roles in one process for convenience — the
// sockets, codec and correlation machinery are exactly what separate
// processes use. For the real thing, run the same topology as three OS
// processes:
//
//	batond -listen 127.0.0.1:7331 -peers 8 -items 10000     # terminal 1
//	batond -seed 127.0.0.1:7331 -peers 4                    # terminal 2
//	batonsim -mode throughput -transport tcp -seedaddr 127.0.0.1:7331   # terminal 3
//
// The daemon exits on its own when the coordinator goes away (the seed
// connection is its lifeline), and the workload client attaches as a pure
// data plane — structural operations (joins, departures, crash repair,
// balancing, audits) are the coordinator's alone.
//
// Run with:
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"

	"baton"
	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/store"
	"baton/internal/workload"
)

func main() {
	// 1. The coordinator: grow an 8-peer overlay in the simulator, load it,
	// and animate it with a listening wire transport. Port :0 picks a free
	// loopback port — real deployments pass a routable host:port.
	nw := baton.NewNetwork(baton.Config{Seed: 7})
	for nw.Size() < 8 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			log.Fatalf("join: %v", err)
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: 11})
	keys := gen.Keys(5_000)
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	head, err := p2p.NewClusterListen(nw, "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer head.Stop()
	fmt.Printf("coordinator: %d peers, listening on %s\n", head.Size(), head.Addr())

	// 2. A daemon joins through the wire and hosts 4 more peers. From here
	// on the overlay spans two "processes": half the ring answers locally,
	// half across the socket, and neither side can tell which is which.
	daemon, err := p2p.JoinRemote(head.Addr(), 4)
	if err != nil {
		log.Fatalf("daemon join: %v", err)
	}
	defer daemon.Stop()
	fmt.Printf("daemon: joined, hosting 4 of %d peers\n", daemon.Size())

	// 3. A pure client attaches with no hosted peers: a data-plane window
	// onto the overlay, like batonsim -seedaddr.
	client, err := p2p.JoinRemote(head.Addr(), 0)
	if err != nil {
		log.Fatalf("client join: %v", err)
	}
	defer client.Stop()

	// Singleton traffic from the client: every key in the overlay is
	// reachable, wherever it lives.
	vias := client.PeerIDs()
	hits := 0
	for _, k := range keys[:1000] {
		if _, found, _, err := client.Get(vias[int(k)%len(vias)], k); err == nil && found {
			hits++
		}
	}
	fmt.Printf("client gets: %d/1000 hits\n", hits)

	// Writes from the client land on whichever process owns the key and
	// replicate to the owner's replica holder as usual.
	if _, err := client.Put(vias[0], 424_242, []byte("cross-process")); err != nil {
		log.Fatalf("put: %v", err)
	}
	v, found, hops, err := daemon.Get(daemon.PeerIDs()[0], 424_242)
	fmt.Printf("daemon reads the client's write: %q (found=%v, hops=%d, err=%v)\n", v, found, hops, err)

	// A parallel range query scatters across both processes and stitches
	// the answer in key order.
	items, _, err := client.Range(vias[1], keyspace.Range{Lower: keyspace.DomainMin, Upper: keyspace.DomainMin + (keyspace.DomainMax-keyspace.DomainMin)/4})
	if err != nil {
		log.Fatalf("range: %v", err)
	}
	fmt.Printf("client range over the first quarter of the domain: %d items\n", len(items))

	// Bulk writes batch per owning peer; the batches for daemon-hosted
	// peers cross the wire as single frames.
	var bulk []store.Item
	for i := 0; i < 64; i++ {
		bulk = append(bulk, store.Item{Key: keyspace.Key(600_000 + i), Value: []byte("b")})
	}
	results, err := client.BulkPut(bulk)
	if err != nil {
		log.Fatalf("bulk put: %v", err)
	}
	ok := 0
	for _, r := range results {
		if r.Err == nil {
			ok++
		}
	}
	fmt.Printf("client bulk put: %d/%d applied\n", ok, len(bulk))

	// Structural operations stay with the coordinator: the audit exports
	// cross the wire to collect every process's peers, and the invariant
	// suite holds over the whole overlay.
	if err := head.SyncReplicas(); err != nil {
		log.Fatalf("sync replicas: %v", err)
	}
	snaps, err := head.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	if err := baton.VerifySnapshot(head.Domain(), snaps); err != nil {
		log.Fatalf("structural audit: %v", err)
	}
	fmt.Printf("coordinator audit: %d peers across 2 processes, structural invariants OK\n", len(snaps))

	// And a daemon asking for one is refused — the topology has one owner.
	if _, err := daemon.Snapshot(); err != nil {
		fmt.Printf("daemon asking for the audit: %v\n", err)
	}
}
