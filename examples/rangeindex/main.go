// Range index under skew: a distributed secondary index over a skewed
// attribute, the workload that motivates BATON's load balancing.
//
// The scenario mirrors the paper's introduction: a community of peers shares
// a data set whose keys are heavily skewed (Zipf 1.0 — think timestamps,
// popularity counters, or prices clustered around a few hot values). A plain
// range-partitioned overlay would concentrate most of the data on a handful
// of peers; BATON's load balancing (Section IV-D) lets lightly loaded peers
// leave their position and re-join underneath the overloaded ones, keeping
// the per-peer load bounded while range queries keep working.
//
// Run with:
//
//	go run ./examples/rangeindex
package main

import (
	"fmt"
	"log"
	"sort"

	"baton"
	"baton/internal/workload"
)

func main() {
	const peers = 300
	const items = 30_000

	run := func(label string, lb baton.LoadBalanceConfig) *baton.Network {
		nw := baton.NewNetwork(baton.Config{Seed: 7, LoadBalance: lb})
		for nw.Size() < peers {
			if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
				log.Fatalf("join: %v", err)
			}
		}
		gen := workload.NewGenerator(workload.Config{
			Distribution: workload.Zipf,
			ZipfTheta:    1.0,
			Seed:         11,
		})
		for i := 0; i < items; i++ {
			if _, err := nw.Insert(nw.RandomPeer(), gen.NextKey(), nil); err != nil {
				log.Fatalf("insert: %v", err)
			}
		}
		counts := make([]int, 0, peers)
		for _, p := range nw.Peers() {
			counts = append(counts, p.DataCount)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		fmt.Printf("%-22s hottest peer %5d items | top-5 %v | load-balancing ops %d (%d msgs)\n",
			label, counts[0], counts[:5], nw.LoadBalanceStats().Events, nw.LoadBalanceStats().Messages)
		return nw
	}

	fmt.Printf("indexing %d Zipf(1.0) keys across %d peers\n\n", items, peers)
	run("no load balancing:", baton.LoadBalanceConfig{})
	balanced := run("with load balancing:", baton.LoadBalanceConfig{OverloadThreshold: 300})

	// Range queries still work over the rebalanced index and touch only the
	// peers whose ranges intersect the query.
	fmt.Println("\nrange queries over the balanced index (hot region first):")
	for _, q := range []baton.Range{
		baton.NewRange(1, 50_000),
		baton.NewRange(1, 5_000_000),
		baton.NewRange(400_000_000, 600_000_000),
	} {
		res, cost, err := balanced.SearchRange(balanced.RandomPeer(), q)
		if err != nil {
			log.Fatalf("range query %v: %v", q, err)
		}
		fmt.Printf("  %-28v -> %6d items from %3d peers in %3d messages\n",
			q, len(res.Items), len(res.Peers), cost.Messages)
	}

	if err := balanced.CheckInvariants(); err != nil {
		log.Fatalf("invariants violated: %v", err)
	}
	fmt.Println("\noverlay invariants hold after rebalancing")
}
