// Crash recovery: kill a peer abruptly — its process, data and held
// replicas are gone — watch its key range answer ErrOwnerDown, then repair
// it and watch every key come back with its pre-crash value, restored from
// the replica kept at the adjacent peer.
//
// The walkthrough has three acts:
//
//  1. Explicit repair: crash one peer, observe the transient ErrOwnerDown
//     window, run Recover, and check every key the dead peer owned reads
//     back exactly as written.
//  2. The background repairer: with StartAutoRecover on, a crash heals
//     itself — the first requests to notice the dead owner queue the
//     repair, and traffic succeeds again moments later with no operator
//     in the loop.
//  3. The audit: quiesce, snapshot, and verify both invariant suites —
//     the structural one (balanced shape, gap-free ranges, symmetric
//     links) and the replication one (every peer's items exactly mirrored
//     at its holder).
//
// Run with:
//
//	go run ./examples/crashrecovery
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"baton"
	"baton/internal/workload/driver"
)

func main() {
	cluster, keys, err := driver.BuildCluster(48, 8_000, 11)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	defer cluster.Stop()
	fmt.Printf("live cluster: %d peer goroutines, %d items, replication on\n\n", cluster.Size(), len(keys))

	// --- Act 1: crash, observe the outage, repair -------------------------
	snaps, err := cluster.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	victim := snaps[0]
	for _, ps := range snaps[1:] {
		if len(ps.Items) > len(victim.Items) {
			victim = ps
		}
	}
	fmt.Printf("act 1: crashing peer %d (%d items in range [%d, %d))\n",
		victim.ID, len(victim.Items), victim.Range.Lower, victim.Range.Upper)
	if err := cluster.Kill(victim.ID); err != nil {
		log.Fatalf("kill: %v", err)
	}

	via := baton.PeerID(0)
	for _, id := range cluster.PeerIDs() {
		if cluster.Alive(id) {
			via = id
			break
		}
	}
	probe := victim.Items[0].Key
	if _, _, _, err := cluster.Get(via, probe); errors.Is(err, baton.ErrOwnerDown) {
		fmt.Printf("  get %d while down: %v (the transient window)\n", probe, err)
	}

	restored, err := cluster.Recover(victim.ID)
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	fmt.Printf("  recovered: %d items restored from the replica\n", restored)
	for _, it := range victim.Items {
		v, found, _, err := cluster.Get(via, it.Key)
		if err != nil || !found || string(v) != string(it.Value) {
			log.Fatalf("key %d after recovery: found=%v err=%v", it.Key, found, err)
		}
	}
	fmt.Printf("  all %d keys readable again with their pre-crash values\n\n", len(victim.Items))

	// --- Act 2: the background repairer ----------------------------------
	cluster.StartAutoRecover()
	snaps, err = cluster.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	victim = snaps[len(snaps)/2]
	fmt.Printf("act 2: auto-recover on; crashing peer %d (%d items)\n", victim.ID, len(victim.Items))
	if err := cluster.Kill(victim.ID); err != nil {
		log.Fatalf("kill: %v", err)
	}
	probe = victim.Range.Lower
	start := time.Now()
	for {
		if _, _, _, err := cluster.Get(via, probe); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("  range healed by the background repairer in %v — no Recover call\n\n", time.Since(start).Round(time.Millisecond))

	// --- Act 3: the audit -------------------------------------------------
	fmt.Println("act 3: quiesce and audit")
	if err := cluster.SyncReplicas(); err != nil {
		log.Fatalf("sync replicas: %v", err)
	}
	snaps, err = cluster.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	if err := baton.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		log.Fatalf("structural invariants: %v", err)
	}
	replicas, err := cluster.Replicas()
	if err != nil {
		log.Fatalf("replicas: %v", err)
	}
	if err := baton.VerifyReplication(snaps, replicas); err != nil {
		log.Fatalf("replication invariants: %v", err)
	}
	total := 0
	for _, ps := range snaps {
		total += len(ps.Items)
	}
	fmt.Printf("  %d peers, %d items: structural + replication invariants OK\n", len(snaps), total)
}
