// Live cluster: run the overlay as concurrently executing peers
// (goroutine-per-peer) and hammer it with parallel clients while peers die.
//
// The simulator in internal/core reproduces the paper's figures; this
// example shows the same overlay behaving as a deployment would: requests
// are real messages between peer goroutines, many clients issue queries at
// once, and killed peers are routed around thanks to the sideways routing
// tables (Section III-D of the paper).
//
// Run with:
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"baton"
	"baton/internal/p2p"
	"baton/internal/workload"
)

func main() {
	// Build and load the overlay with the simulator, then animate it.
	nw := baton.NewNetwork(baton.Config{Seed: 99})
	for nw.Size() < 300 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			log.Fatalf("join: %v", err)
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: 101})
	keys := gen.Keys(10_000)
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	cluster := p2p.NewCluster(nw)
	defer cluster.Stop()
	ids := cluster.PeerIDs()
	fmt.Printf("live cluster: %d peer goroutines, %d items\n", cluster.Size(), len(keys))

	// 32 concurrent clients issue lookups and range queries while 20 peers
	// are killed mid-run.
	var found, missed, failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	const clients = 32
	const perClient = 400
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cl)))
			for i := 0; i < perClient; i++ {
				via := ids[rng.Intn(len(ids))]
				if !cluster.Alive(via) {
					continue
				}
				k := keys[rng.Intn(len(keys))]
				_, ok, _, err := cluster.Get(via, k)
				switch {
				case err != nil:
					failed.Add(1)
				case ok:
					found.Add(1)
				default:
					missed.Add(1)
				}
			}
		}(cl)
	}

	// Kill peers while the clients are running.
	killer := rand.New(rand.NewSource(7))
	killed := 0
	for killed < 20 {
		id := ids[killer.Intn(len(ids))]
		if cluster.Alive(id) {
			if err := cluster.Kill(id); err == nil {
				killed++
			}
		}
	}
	wg.Wait()

	total := found.Load() + missed.Load() + failed.Load()
	fmt.Printf("killed %d of %d peers while %d clients ran %d lookups in %v\n",
		killed, cluster.Size(), clients, total, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  answered: %d   not found: %d   unavailable or failed: %d\n",
		found.Load(), missed.Load(), failed.Load())
	fmt.Printf("  peer-to-peer messages delivered: %d\n", cluster.Messages())
}
