// Live-cluster benchmarks: where bench_test.go regenerates the paper's
// message-count figures from the serialised simulator, this file measures
// the wall-clock behaviour of the concurrent goroutine-per-peer cluster —
// the parallel range fan-out against the sequential adjacent-chain walk,
// batched bulk operations against routed singleton operations, and the
// closed-loop throughput driver. Run with:
//
//	go test -bench=Cluster -benchmem .
package baton_test

import (
	"math/rand"
	"sync"
	"testing"

	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/store"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

// clusterCache lazily builds and shares one loaded 256-peer live cluster;
// building (joins + inserts through the simulator) would otherwise dominate
// any single benchmark's runtime.
type clusterCache struct {
	sync.Once
	c    *p2p.Cluster
	keys []keyspace.Key
}

func (cc *clusterCache) get() (*p2p.Cluster, []keyspace.Key) {
	cc.Do(func() {
		c, keys, err := driver.BuildCluster(benchPeers, benchItems, 1)
		if err != nil {
			panic(err)
		}
		cc.c = c
		cc.keys = keys
	})
	return cc.c, cc.keys
}

// The write-heavy benchmarks (puts, bulk puts, the mixed driver) share one
// cluster they are free to grow; the range benchmarks use a separate one
// that nothing mutates, so the serial-vs-parallel comparison always scans
// exactly benchItems items regardless of benchmark order or -count.
var (
	benchWriteCluster clusterCache
	benchRangeCluster clusterCache
)

const (
	benchPeers = 256
	benchItems = 20_000
)

// benchRanges returns deterministic query ranges spanning ≥ 32 of the 256
// peers (selectivity 0.15 of the domain ≈ 38 peers).
func benchRanges(n int) []keyspace.Range {
	gen := workload.NewGenerator(workload.Config{Seed: 3})
	out := make([]keyspace.Range, n)
	for i := range out {
		out[i] = gen.RangeQuery(0.15)
	}
	return out
}

// BenchmarkClusterRangeSerial walks wide range queries through the
// sequential adjacent-chain protocol of Section IV-B: latency is linear in
// the number of peers covering the range.
func BenchmarkClusterRangeSerial(b *testing.B) {
	c, _ := benchRangeCluster.get()
	ids := c.PeerIDs()
	ranges := benchRanges(64)
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		_, h, err := c.RangeSerial(ids[i%len(ids)], ranges[i%len(ranges)])
		if err != nil {
			b.Fatal(err)
		}
		if h > hops {
			hops = h
		}
	}
	b.ReportMetric(float64(hops), "max-chain-hops")
}

// BenchmarkClusterRangeParallel answers the same wide queries with the
// parallel fan-out: the critical path shrinks to the scatter depth, which
// is what the max-chain-hops metric shows against the serial benchmark.
func BenchmarkClusterRangeParallel(b *testing.B) {
	c, _ := benchRangeCluster.get()
	ids := c.PeerIDs()
	ranges := benchRanges(64)
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		_, h, err := c.Range(ids[i%len(ids)], ranges[i%len(ranges)])
		if err != nil {
			b.Fatal(err)
		}
		if h > hops {
			hops = h
		}
	}
	b.ReportMetric(float64(hops), "max-chain-hops")
}

// BenchmarkClusterGetOverlay looks keys up through the paper-faithful
// per-hop overlay routing — the baseline the direct route cache is measured
// against.
func BenchmarkClusterGetOverlay(b *testing.B) {
	c, keys := benchRangeCluster.get()
	c.SetRouteMode(p2p.RouteOverlay)
	ids := c.PeerIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _, err := c.Get(ids[i%len(ids)], keys[i%len(keys)]); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkClusterGetDirect looks the same keys up through the
// epoch-validated route cache: one delivered message per lookup instead of
// the O(log N) hop chain, and no client-side allocation thanks to the
// pooled reply channels.
func BenchmarkClusterGetDirect(b *testing.B) {
	c, keys := benchRangeCluster.get()
	c.SetRouteMode(p2p.RouteDirect)
	defer c.SetRouteMode(p2p.RouteOverlay)
	ids := c.PeerIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _, err := c.Get(ids[i%len(ids)], keys[i%len(keys)]); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

// TestDirectGetAllocsPerOp pins down the zero-alloc request path: a
// direct-routed Get on a quiesced cluster must not allocate on either side
// of the message exchange — the reply channel comes from the pool, the
// request and response travel by value — so the whole-process allocation
// count per operation stays at (amortised) zero. The bound of 2 leaves room
// for scheduler and pool-refill noise while still failing loudly if a
// per-op allocation sneaks back onto the path.
func TestDirectGetAllocsPerOp(t *testing.T) {
	c, keys := benchRangeCluster.get()
	c.SetRouteMode(p2p.RouteDirect)
	defer c.SetRouteMode(p2p.RouteOverlay)
	via := c.PeerIDs()[0]
	// Warm the reply-channel pool and the route cache path.
	for i := 0; i < 100; i++ {
		c.Get(via, keys[i%len(keys)])
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, ok, _, err := c.Get(via, keys[i%len(keys)]); err != nil || !ok {
			t.Fatalf("get: ok=%v err=%v", ok, err)
		}
		i++
	})
	if allocs > 2 {
		t.Fatalf("direct get allocates %.1f objects per op, want (amortised) 0 — the pooled reply-channel path regressed", allocs)
	}
}

// BenchmarkClusterPutRouted stores a batch of 64 keys one routed request at
// a time — the baseline BulkPut amortises.
func BenchmarkClusterPutRouted(b *testing.B) {
	c, _ := benchWriteCluster.get()
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(5))
	value := []byte("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			k := keyspace.Key(1 + rng.Int63n(999_999_998))
			if _, err := c.Put(ids[j%len(ids)], k, value); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClusterBulkPut stores the same sized batch through BulkPut: one
// pipelined message per responsible peer instead of one routed walk per key.
func BenchmarkClusterBulkPut(b *testing.B) {
	c, _ := benchWriteCluster.get()
	rng := rand.New(rand.NewSource(6))
	batch := make([]store.Item, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = store.Item{Key: keyspace.Key(1 + rng.Int63n(999_999_998)), Value: []byte("v")}
		}
		res, err := c.BulkPut(batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkClusterThroughput runs the closed-loop driver (16 clients, mixed
// 70/20/10 get/put/range workload) and reports ops/sec and tail latency as
// benchmark metrics.
func BenchmarkClusterThroughput(b *testing.B) {
	c, keys := benchWriteCluster.get()
	b.ResetTimer()
	var rep driver.Report
	for i := 0; i < b.N; i++ {
		rep = driver.Run(c, driver.Config{
			Clients:          16,
			Ops:              4_000,
			GetFraction:      0.7,
			PutFraction:      0.2,
			RangeFraction:    0.1,
			RangeSelectivity: 0.01,
			Keys:             keys,
			Seed:             int64(i),
		})
	}
	b.ReportMetric(rep.OpsPerSec, "ops/sec")
	b.ReportMetric(rep.Latency[driver.OpAll].Percentile(0.99), "p99-µs")
}

// BenchmarkClusterThroughputSteadyChurn is the paired comparison for
// BenchmarkClusterThroughput: the identical workload while 8 peers join and
// 8 depart mid-run, measuring what live membership costs the data path.
func BenchmarkClusterThroughputSteadyChurn(b *testing.B) {
	// A private cluster: churn changes the composition, which must not leak
	// into the other benchmarks sharing the cached ones.
	c, keys, err := driver.BuildCluster(benchPeers, benchItems, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	b.ResetTimer()
	var rep driver.Report
	for i := 0; i < b.N; i++ {
		rep = driver.Run(c, driver.Config{
			Clients:          16,
			Ops:              4_000,
			GetFraction:      0.7,
			PutFraction:      0.2,
			RangeFraction:    0.1,
			RangeSelectivity: 0.01,
			Keys:             keys,
			JoinPeers:        8,
			DepartPeers:      8,
			Seed:             int64(i),
		})
	}
	b.ReportMetric(rep.OpsPerSec, "ops/sec")
	b.ReportMetric(rep.Latency[driver.OpAll].Percentile(0.99), "p99-µs")
}

// BenchmarkClusterJoin measures one online join — Algorithm 1 locate over
// live messages, range split, data handoff and routing updates — against a
// loaded 64-peer cluster; each iteration departs a peer outside the timer
// so the cluster size (and therefore the per-join cost) holds steady.
func BenchmarkClusterJoin(b *testing.B) {
	c, _, err := driver.BuildCluster(64, benchItems, 3)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := c.PeerIDs()
		via := ids[rng.Intn(len(ids))]
		if _, err := c.Join(via); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		ids = c.PeerIDs()
		if err := c.Depart(ids[rng.Intn(len(ids))]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkClusterRecover measures one full crash repair: kill (store
// wipe) plus Recover — structural crash-leave on the mirror, replica fetch
// from the holder, range restoration into the new owner, link updates and
// replica re-seating. Each iteration joins a fresh peer outside the timer
// so the cluster size holds steady.
func BenchmarkClusterRecover(b *testing.B) {
	c, _, err := driver.BuildCluster(64, benchItems, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	restored := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ids := c.PeerIDs()
		if _, err := c.Join(ids[rng.Intn(len(ids))]); err != nil {
			b.Fatal(err)
		}
		ids = c.PeerIDs()
		victim := ids[rng.Intn(len(ids))]
		b.StartTimer()
		if err := c.Kill(victim); err != nil {
			b.Fatal(err)
		}
		n, err := c.Recover(victim)
		if err != nil {
			b.Fatal(err)
		}
		restored += n
	}
	b.ReportMetric(float64(restored)/float64(b.N), "items-restored/op")
}

// BenchmarkClusterThroughputCrashChurn is the availability-under-crashes
// companion of BenchmarkClusterThroughputSteadyChurn: the identical mixed
// workload while 8 peers crash and 8 repairs run mid-run, measuring what
// the kill -> ErrOwnerDown -> recover cycle costs the data path.
func BenchmarkClusterThroughputCrashChurn(b *testing.B) {
	// A private cluster: crashes change the composition, which must not
	// leak into the benchmarks sharing the cached clusters.
	c, keys, err := driver.BuildCluster(benchPeers, benchItems, 6)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	b.ResetTimer()
	var rep driver.Report
	for i := 0; i < b.N; i++ {
		rep = driver.Run(c, driver.Config{
			Clients:          16,
			Ops:              4_000,
			GetFraction:      0.7,
			PutFraction:      0.2,
			RangeFraction:    0.1,
			RangeSelectivity: 0.01,
			Keys:             keys,
			KillPeers:        8,
			RecoverPeers:     8,
			Seed:             int64(i),
		})
	}
	b.ReportMetric(rep.OpsPerSec, "ops/sec")
	b.ReportMetric(rep.Latency[driver.OpAll].Percentile(0.99), "p99-µs")
	b.ReportMetric(float64(rep.Errors), "transient-errors")
}

// BenchmarkClusterDepart measures one graceful departure with full data
// handoff; each iteration joins a fresh peer outside the timer so the
// cluster size holds steady.
func BenchmarkClusterDepart(b *testing.B) {
	c, _, err := driver.BuildCluster(64, benchItems, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ids := c.PeerIDs()
		if _, err := c.Join(ids[rng.Intn(len(ids))]); err != nil {
			b.Fatal(err)
		}
		ids = c.PeerIDs()
		victim := ids[rng.Intn(len(ids))]
		b.StartTimer()
		if err := c.Depart(victim); err != nil {
			b.Fatal(err)
		}
	}
}
