package baton_test

import (
	"testing"
	"time"

	"baton"
)

// TestPublicAPIQuickstart exercises the re-exported public API end to end:
// grow a network, store data, query it, remove peers, and read the metrics.
func TestPublicAPIQuickstart(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{Seed: 42})
	for nw.Size() < 50 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	if nw.Domain() != baton.FullDomain() {
		t.Fatalf("domain = %v", nw.Domain())
	}

	keys := []baton.Key{7, 1_000, 999_999_999 / 2, 123_456_789}
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		_, found, cost, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
		if cost.Messages > 40 {
			t.Fatalf("unreasonable search cost %d", cost.Messages)
		}
	}

	res, _, err := nw.SearchRange(nw.RandomPeer(), baton.NewRange(1, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("range query returned %d items, want 2", len(res.Items))
	}

	if _, err := nw.Leave(nw.RandomPeer()); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Metrics().TotalMessages() == 0 {
		t.Fatal("metrics should have accumulated messages")
	}
}

func TestPublicAPILoadBalancing(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{
		Seed:        7,
		LoadBalance: baton.LoadBalanceConfig{OverloadThreshold: 30},
	})
	for nw.Size() < 20 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	// Insert a skewed burst of keys into one narrow region.
	for i := 0; i < 600; i++ {
		k := baton.Key(500_000_000 + i)
		if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := nw.LoadBalanceStats()
	if st.Events == 0 {
		t.Fatal("expected load balancing to trigger")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPILiveCluster exercises the re-exported live cluster: animate
// the network, run single-key and bulk operations, both range modes, and
// shut down cleanly.
func TestPublicAPILiveCluster(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{Seed: 43})
	for nw.Size() < 40 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		k := baton.Key(1 + i*4_999_999)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cluster := baton.NewCluster(nw)
	defer cluster.Stop()
	via := cluster.PeerIDs()[0]

	if _, err := cluster.Put(via, 123, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v, found, _, err := cluster.Get(via, 123)
	if err != nil || !found || string(v) != "x" {
		t.Fatalf("cluster round trip: %q %v %v", v, found, err)
	}

	items := []baton.Item{{Key: 1_000, Value: []byte("a")}, {Key: 900_000_000, Value: []byte("b")}}
	res, err := cluster.BulkPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("bulk put: %+v", r)
		}
	}
	got, err := cluster.BulkGet([]baton.Key{1_000, 900_000_000})
	if err != nil || !got[0].Found || !got[1].Found {
		t.Fatalf("bulk get: %+v %v", got, err)
	}
	if string(got[0].Value) != "a" || string(got[1].Value) != "b" {
		t.Fatalf("bulk get values: %q %q", got[0].Value, got[1].Value)
	}
	if _, err := cluster.BulkDelete([]baton.Key{1_000}); err != nil {
		t.Fatal(err)
	}

	r := baton.NewRange(1, 500_000_000)
	par, _, err := cluster.Range(via, r)
	if err != nil {
		t.Fatal(err)
	}
	ser, _, err := cluster.RangeSerial(via, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(ser) {
		t.Fatalf("parallel range returned %d items, serial %d", len(par), len(ser))
	}

	cluster.Stop()
	if _, _, _, err := cluster.Get(via, 123); err != baton.ErrClusterStopped {
		t.Fatalf("after stop: %v, want ErrClusterStopped", err)
	}
}

// TestPublicAPILiveMembership exercises the live membership surface through
// the facade: online join, graceful departure, the adjacent-peer shuffle,
// and the snapshot audit round trip.
func TestPublicAPILiveMembership(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{Seed: 47})
	for nw.Size() < 20 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		k := baton.Key(1 + i*3_333_333)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cluster := baton.NewCluster(nw)
	defer cluster.Stop()

	via := cluster.PeerIDs()[0]
	newID, err := cluster.Join(via)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if cluster.Size() != 21 {
		t.Fatalf("size after join = %d, want 21", cluster.Size())
	}
	if err := cluster.Depart(cluster.PeerIDs()[5]); err != nil {
		t.Fatalf("depart: %v", err)
	}
	if _, err := cluster.LoadBalance(newID); err != nil {
		t.Fatalf("load balance: %v", err)
	}

	snaps, err := cluster.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := baton.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		t.Fatalf("snapshot audit: %v", err)
	}
	rebuilt, err := baton.NetworkFromSnapshot(cluster.Domain(), snaps)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Size() != cluster.Size() {
		t.Fatalf("rebuilt network has %d peers, cluster %d", rebuilt.Size(), cluster.Size())
	}
	// Every key inserted before the churn is still readable.
	for i := 0; i < 300; i++ {
		k := baton.Key(1 + i*3_333_333)
		_, found, _, err := cluster.Get(cluster.PeerIDs()[0], k)
		if err != nil || !found {
			t.Fatalf("key %d after membership changes: found=%v err=%v", k, found, err)
		}
	}
}

// TestPublicAPIAdaptiveLoadBalancing exercises the re-exported load
// management surface: Loads/ImbalanceRatio metering, one manual BalanceOnce
// pass, and the background balancer on a deliberately skewed cluster.
func TestPublicAPIAdaptiveLoadBalancing(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{Seed: 77})
	for nw.Size() < 20 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	cluster := baton.NewCluster(nw)
	defer cluster.Stop()
	// Pile every write onto one narrow slice of the domain.
	via := cluster.PeerIDs()[0]
	lo := baton.FullDomain().Lower + baton.Key(baton.FullDomain().Size()/2)
	for i := 0; i < 800; i++ {
		if _, err := cluster.Put(via, lo+baton.Key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	loads, err := cluster.Loads()
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 20 {
		t.Fatalf("Loads reported %d peers, want 20", len(loads))
	}
	before := baton.ImbalanceRatio(loads)
	if before < 4 {
		t.Fatalf("skew setup too tame: ratio %.2f", before)
	}
	act, moved, err := cluster.BalanceOnce(baton.AutoBalanceConfig{Theta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if act == baton.BalanceNone || moved == 0 {
		t.Fatalf("BalanceOnce on a skewed cluster: action %v, moved %d", act, moved)
	}
	cluster.StartAutoBalance(baton.AutoBalanceConfig{Theta: 2, Interval: time.Millisecond})
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := cluster.ImbalanceRatio()
		if err != nil {
			t.Fatal(err)
		}
		if r < before/2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background balancer left ratio at %.2f (was %.2f)", r, before)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cluster.BalanceEvents() == 0 {
		t.Fatal("no balance events counted")
	}
	snaps, err := cluster.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := baton.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		t.Fatalf("audit after balancing: %v", err)
	}
}
