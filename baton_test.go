package baton_test

import (
	"testing"

	"baton"
)

// TestPublicAPIQuickstart exercises the re-exported public API end to end:
// grow a network, store data, query it, remove peers, and read the metrics.
func TestPublicAPIQuickstart(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{Seed: 42})
	for nw.Size() < 50 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	if nw.Domain() != baton.FullDomain() {
		t.Fatalf("domain = %v", nw.Domain())
	}

	keys := []baton.Key{7, 1_000, 999_999_999 / 2, 123_456_789}
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		_, found, cost, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
		if cost.Messages > 40 {
			t.Fatalf("unreasonable search cost %d", cost.Messages)
		}
	}

	res, _, err := nw.SearchRange(nw.RandomPeer(), baton.NewRange(1, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("range query returned %d items, want 2", len(res.Items))
	}

	if _, err := nw.Leave(nw.RandomPeer()); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Metrics().TotalMessages() == 0 {
		t.Fatal("metrics should have accumulated messages")
	}
}

func TestPublicAPILoadBalancing(t *testing.T) {
	nw := baton.NewNetwork(baton.Config{
		Seed:        7,
		LoadBalance: baton.LoadBalanceConfig{OverloadThreshold: 30},
	})
	for nw.Size() < 20 {
		if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
			t.Fatal(err)
		}
	}
	// Insert a skewed burst of keys into one narrow region.
	for i := 0; i < 600; i++ {
		k := baton.Key(500_000_000 + i)
		if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := nw.LoadBalanceStats()
	if st.Events == 0 {
		t.Fatal("expected load balancing to trigger")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
