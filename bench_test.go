// Package baton_test holds the repository-level benchmark harness: one
// benchmark per figure of the BATON paper's evaluation (Figure 8(a)–(i)),
// each driving the corresponding experiment at a reduced scale so that
// `go test -bench=. -benchmem` finishes quickly. Paper-scale runs are
// available through `go run ./cmd/batonsim -full`.
//
// Each benchmark reports, in addition to the usual ns/op, the headline
// metric of its figure (average messages per operation, cumulative load
// balancing messages, ...) via b.ReportMetric so that the regenerated
// numbers appear directly in the benchmark output.
package baton_test

import (
	"testing"

	"baton/internal/experiments"
)

// benchOptions returns the reduced experiment scale used by the benchmarks.
func benchOptions() experiments.Options {
	opt := experiments.Quick()
	opt.Sizes = []int{200, 400, 800}
	opt.Runs = 1
	return opt
}

// lastY returns the final Y value of the series with the given label.
func lastY(r experiments.Result, label string) float64 {
	for _, s := range r.Series {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Y
		}
	}
	return 0
}

// BenchmarkFigureA_JoinLeaveSearchCost regenerates Figure 8(a): the average
// number of messages to find the join node and the replacement node.
func BenchmarkFigureA_JoinLeaveSearchCost(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureA(opt)
	}
	b.ReportMetric(lastY(r, "baton join"), "baton-join-msgs")
	b.ReportMetric(lastY(r, "baton leave"), "baton-leave-msgs")
	b.ReportMetric(lastY(r, "chord join"), "chord-join-msgs")
	b.ReportMetric(lastY(r, "multiway leave"), "multiway-leave-msgs")
}

// BenchmarkFigureB_RoutingTableUpdateCost regenerates Figure 8(b): the
// average number of messages to update routing tables on join/leave.
func BenchmarkFigureB_RoutingTableUpdateCost(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureB(opt)
	}
	b.ReportMetric(lastY(r, "baton"), "baton-update-msgs")
	b.ReportMetric(lastY(r, "chord"), "chord-update-msgs")
	b.ReportMetric(lastY(r, "multiway"), "multiway-update-msgs")
}

// BenchmarkFigureC_InsertDelete regenerates Figure 8(c): the average number
// of messages per insert and delete operation.
func BenchmarkFigureC_InsertDelete(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureC(opt)
	}
	b.ReportMetric(lastY(r, "baton insert"), "baton-insert-msgs")
	b.ReportMetric(lastY(r, "baton delete"), "baton-delete-msgs")
	b.ReportMetric(lastY(r, "chord insert"), "chord-insert-msgs")
	b.ReportMetric(lastY(r, "multiway insert"), "multiway-insert-msgs")
}

// BenchmarkFigureD_ExactMatch regenerates Figure 8(d): the average number of
// messages per exact-match query.
func BenchmarkFigureD_ExactMatch(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureD(opt)
	}
	b.ReportMetric(lastY(r, "baton"), "baton-exact-msgs")
	b.ReportMetric(lastY(r, "chord"), "chord-exact-msgs")
	b.ReportMetric(lastY(r, "multiway"), "multiway-exact-msgs")
}

// BenchmarkFigureE_RangeQuery regenerates Figure 8(e): the average number of
// messages per range query.
func BenchmarkFigureE_RangeQuery(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureE(opt)
	}
	b.ReportMetric(lastY(r, "baton"), "baton-range-msgs")
	b.ReportMetric(lastY(r, "multiway"), "multiway-range-msgs")
}

// BenchmarkFigureF_AccessLoad regenerates Figure 8(f): the per-peer access
// load at each tree level. The reported metrics are the per-peer search load
// at the root and at the deepest level; the paper's claim is that the root is
// not a hot spot.
func BenchmarkFigureF_AccessLoad(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureF(opt)
	}
	for _, s := range r.Series {
		if s.Label == "search load/peer" && len(s.Points) > 0 {
			b.ReportMetric(s.Points[0].Y, "root-search-load")
			b.ReportMetric(s.Points[len(s.Points)-1].Y, "leaf-search-load")
		}
	}
}

// BenchmarkFigureG_LoadBalancing regenerates Figure 8(g): the cumulative
// number of load balancing messages for uniform and skewed insertions.
func BenchmarkFigureG_LoadBalancing(b *testing.B) {
	opt := benchOptions()
	opt.DataPerNode = 40
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureG(opt)
	}
	b.ReportMetric(lastY(r, "uniform data"), "uniform-lb-msgs")
	b.ReportMetric(lastY(r, "zipf(1.0) data"), "zipf-lb-msgs")
}

// BenchmarkFigureH_RestructureSize regenerates Figure 8(h): the distribution
// of the number of peers involved in a load balancing operation. The reported
// metric is the fraction of operations involving at most four peers.
func BenchmarkFigureH_RestructureSize(b *testing.B) {
	opt := benchOptions()
	opt.DataPerNode = 40
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureH(opt)
	}
	small := 0.0
	for _, s := range r.Series {
		if s.Label != "fraction" {
			continue
		}
		for _, p := range s.Points {
			if p.X <= 4 {
				small += p.Y
			}
		}
	}
	b.ReportMetric(small, "fraction-small-shifts")
}

// BenchmarkFigureI_NetworkDynamics regenerates Figure 8(i): the extra
// messages caused by concurrent joins and leaves. The reported metric is the
// redirect overhead per operation at the largest concurrency level.
func BenchmarkFigureI_NetworkDynamics(b *testing.B) {
	opt := benchOptions()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.FigureI(opt)
	}
	b.ReportMetric(lastY(r, "extra messages/op"), "extra-msgs-per-op")
}
